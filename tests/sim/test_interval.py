"""Unit tests for the interval timing model."""

import pytest

from repro.isa.instructions import InstrClass
from repro.sim.config import LARGE_CORE, SMALL_CORE
from repro.sim.interval import (
    BOUND_NAMES,
    IntervalInputs,
    MissProfile,
    compute_cycles,
    compute_cycles_batch,
    effective_mlp,
    throughput_cpi,
)


def _counts(**kwargs):
    mapping = {
        "alu": InstrClass.INT_ALU,
        "mul": InstrClass.INT_MUL,
        "div": InstrClass.INT_DIV,
        "fp": InstrClass.FP_ADD,
        "fpdiv": InstrClass.FP_DIV,
        "br": InstrClass.BRANCH,
        "ld": InstrClass.LOAD,
        "st": InstrClass.STORE,
    }
    return {mapping[k]: v for k, v in kwargs.items()}


class TestThroughputBounds:
    def test_width_bound(self):
        bounds = throughput_cpi(SMALL_CORE, _counts(alu=100), 100)
        assert bounds["width"] == pytest.approx(1 / 3)

    def test_alu_bound_counts_branches(self):
        bounds = throughput_cpi(SMALL_CORE, _counts(alu=50, br=50), 100)
        assert bounds["alu"] == pytest.approx(100 / (3 * 100))

    def test_div_occupancy_inflates_simd_bound(self):
        light = throughput_cpi(SMALL_CORE, _counts(mul=100), 100)
        heavy = throughput_cpi(SMALL_CORE, _counts(div=100), 100)
        assert heavy["simd"] > light["simd"] * 5

    def test_mem_port_bound(self):
        bounds = throughput_cpi(LARGE_CORE, _counts(ld=60, st=40), 100)
        assert bounds["mem_ports"] == pytest.approx(100 / (4 * 100))


class TestEffectiveMlp:
    def test_serial_code_has_unit_mlp(self):
        assert effective_mlp(SMALL_CORE, dependency_distance=1.0) == 1.0

    def test_mlp_grows_with_dependency_distance(self):
        low = effective_mlp(SMALL_CORE, 2.0)
        high = effective_mlp(SMALL_CORE, 8.0)
        assert high > low

    def test_mlp_capped_by_lsq(self):
        assert effective_mlp(SMALL_CORE, 100.0) <= SMALL_CORE.lsq / 4.0

    def test_streams_help_sublinearly(self):
        one = effective_mlp(LARGE_CORE, 4.0, parallel_streams=1)
        four = effective_mlp(LARGE_CORE, 4.0, parallel_streams=4)
        assert one < four < one * 4


class TestComputeCycles:
    def _cycles(self, core=SMALL_CORE, misses=None, **kwargs):
        defaults = dict(
            total_instructions=1000,
            class_counts=_counts(alu=1000),
            dep_cycles_per_iteration=10.0,
            loop_size=100,
            misses=misses or MissProfile(),
        )
        defaults.update(kwargs)
        result = compute_cycles(core, **defaults)
        return result.cycles, result.breakdown

    def test_base_cycles_at_least_width_bound(self):
        cycles, _ = self._cycles()
        assert cycles >= 1000 / SMALL_CORE.front_end_width

    def test_mispredicts_add_penalty(self):
        clean, _ = self._cycles()
        dirty, breakdown = self._cycles(
            misses=MissProfile(branch_mispredicts=50)
        )
        assert dirty == pytest.approx(
            clean + 50 * SMALL_CORE.mispredict_penalty
        )
        assert breakdown["branch_mispredict"] == 50 * SMALL_CORE.mispredict_penalty

    def test_load_misses_add_overlapped_penalty(self):
        clean, _ = self._cycles()
        missy, _ = self._cycles(misses=MissProfile(load_l2_misses=20))
        assert missy > clean
        # MLP overlap means less than the full serial latency.
        assert missy - clean < 20 * SMALL_CORE.memory_latency

    def test_store_misses_cheaper_than_load_misses(self):
        loads, _ = self._cycles(misses=MissProfile(load_l2_misses=20))
        stores, _ = self._cycles(misses=MissProfile(store_l2_misses=20))
        assert stores < loads

    def test_dependency_bound_can_dominate(self):
        result = compute_cycles(
            SMALL_CORE,
            total_instructions=1000,
            class_counts=_counts(alu=1000),
            dep_cycles_per_iteration=500.0,
            loop_size=100,
            misses=MissProfile(),
        )
        assert result.binding_bound == "dependency"
        assert result.cycles >= 1000 / 100 * 500 * 0.99

    def test_breakdown_is_purely_numeric_and_sums_to_cycles(self):
        result = compute_cycles(
            SMALL_CORE,
            total_instructions=1000,
            class_counts=_counts(alu=900, ld=100),
            dep_cycles_per_iteration=10.0,
            loop_size=100,
            misses=MissProfile(branch_mispredicts=5, load_l2_misses=7),
        )
        assert all(
            isinstance(v, (int, float)) and not isinstance(v, str)
            for v in result.breakdown.values()
        )
        assert sum(result.breakdown.values()) == pytest.approx(result.cycles)
        assert result.binding_bound in BOUND_NAMES + ("dependency",)

    def test_icache_misses_stall_frontend(self):
        clean, _ = self._cycles()
        stalled, _ = self._cycles(misses=MissProfile(icache_l1_misses=30))
        assert stalled == pytest.approx(clean + 30 * SMALL_CORE.l2.latency)

    def test_zero_instructions_rejected(self):
        with pytest.raises(ValueError):
            compute_cycles(
                SMALL_CORE, 0, _counts(alu=1), 1.0, 100, MissProfile()
            )


class TestComputeCyclesBatch:
    """Stage 3 as a numpy batch must be bit-identical to scalar calls."""

    def _batch(self):
        return [
            IntervalInputs(
                core=core,
                total_instructions=total,
                class_counts=counts,
                dep_cycles_per_iteration=dep,
                loop_size=loop,
                misses=misses,
                dependency_distance=dd,
                parallel_streams=ps,
            )
            for core in (SMALL_CORE, LARGE_CORE)
            for total, counts, dep, loop, misses, dd, ps in [
                (1000, _counts(alu=1000), 10.0, 100, MissProfile(), 4.0, 1),
                (4800, _counts(alu=2000, ld=1400, st=700, br=700),
                 37.5, 160, MissProfile(branch_mispredicts=111,
                                        icache_l1_misses=13,
                                        load_l1_misses=222,
                                        load_l2_misses=77,
                                        store_l1_misses=55,
                                        store_l2_misses=11,
                                        dtlb_misses=29), 2.5, 3),
                (900, _counts(div=300, fpdiv=300, fp=300), 5000.0, 90,
                 MissProfile(icache_l2_misses=7), 1.0, 1),
                (64, _counts(ld=64), 1.0, 1, MissProfile(dtlb_misses=64),
                 16.0, 9),
            ]
        ]

    def test_batch_bit_identical_to_scalar(self):
        batch = self._batch()
        batched = compute_cycles_batch(batch)
        for inputs, result in zip(batch, batched):
            scalar = compute_cycles(
                inputs.core,
                inputs.total_instructions,
                inputs.class_counts,
                inputs.dep_cycles_per_iteration,
                inputs.loop_size,
                inputs.misses,
                dependency_distance=inputs.dependency_distance,
                parallel_streams=inputs.parallel_streams,
            )
            assert result.cycles == scalar.cycles  # exact float equality
            assert result.breakdown == scalar.breakdown
            assert result.binding_bound == scalar.binding_bound

    def test_empty_batch(self):
        assert compute_cycles_batch([]) == []

    def test_batch_rejects_nonpositive_instructions(self):
        bad = self._batch()
        bad[1].total_instructions = 0
        with pytest.raises(ValueError):
            compute_cycles_batch(bad)
