"""Unit tests for the interval timing model."""

import pytest

from repro.isa.instructions import InstrClass
from repro.sim.config import LARGE_CORE, SMALL_CORE
from repro.sim.interval import (
    MissProfile,
    compute_cycles,
    effective_mlp,
    throughput_cpi,
)


def _counts(**kwargs):
    mapping = {
        "alu": InstrClass.INT_ALU,
        "mul": InstrClass.INT_MUL,
        "div": InstrClass.INT_DIV,
        "fp": InstrClass.FP_ADD,
        "fpdiv": InstrClass.FP_DIV,
        "br": InstrClass.BRANCH,
        "ld": InstrClass.LOAD,
        "st": InstrClass.STORE,
    }
    return {mapping[k]: v for k, v in kwargs.items()}


class TestThroughputBounds:
    def test_width_bound(self):
        bounds = throughput_cpi(SMALL_CORE, _counts(alu=100), 100)
        assert bounds["width"] == pytest.approx(1 / 3)

    def test_alu_bound_counts_branches(self):
        bounds = throughput_cpi(SMALL_CORE, _counts(alu=50, br=50), 100)
        assert bounds["alu"] == pytest.approx(100 / (3 * 100))

    def test_div_occupancy_inflates_simd_bound(self):
        light = throughput_cpi(SMALL_CORE, _counts(mul=100), 100)
        heavy = throughput_cpi(SMALL_CORE, _counts(div=100), 100)
        assert heavy["simd"] > light["simd"] * 5

    def test_mem_port_bound(self):
        bounds = throughput_cpi(LARGE_CORE, _counts(ld=60, st=40), 100)
        assert bounds["mem_ports"] == pytest.approx(100 / (4 * 100))


class TestEffectiveMlp:
    def test_serial_code_has_unit_mlp(self):
        assert effective_mlp(SMALL_CORE, dependency_distance=1.0) == 1.0

    def test_mlp_grows_with_dependency_distance(self):
        low = effective_mlp(SMALL_CORE, 2.0)
        high = effective_mlp(SMALL_CORE, 8.0)
        assert high > low

    def test_mlp_capped_by_lsq(self):
        assert effective_mlp(SMALL_CORE, 100.0) <= SMALL_CORE.lsq / 4.0

    def test_streams_help_sublinearly(self):
        one = effective_mlp(LARGE_CORE, 4.0, parallel_streams=1)
        four = effective_mlp(LARGE_CORE, 4.0, parallel_streams=4)
        assert one < four < one * 4


class TestComputeCycles:
    def _cycles(self, core=SMALL_CORE, misses=None, **kwargs):
        defaults = dict(
            total_instructions=1000,
            class_counts=_counts(alu=1000),
            dep_cycles_per_iteration=10.0,
            loop_size=100,
            misses=misses or MissProfile(),
        )
        defaults.update(kwargs)
        cycles, breakdown = compute_cycles(core, **defaults)
        return cycles, breakdown

    def test_base_cycles_at_least_width_bound(self):
        cycles, _ = self._cycles()
        assert cycles >= 1000 / SMALL_CORE.front_end_width

    def test_mispredicts_add_penalty(self):
        clean, _ = self._cycles()
        dirty, breakdown = self._cycles(
            misses=MissProfile(branch_mispredicts=50)
        )
        assert dirty == pytest.approx(
            clean + 50 * SMALL_CORE.mispredict_penalty
        )
        assert breakdown["branch_mispredict"] == 50 * SMALL_CORE.mispredict_penalty

    def test_load_misses_add_overlapped_penalty(self):
        clean, _ = self._cycles()
        missy, _ = self._cycles(misses=MissProfile(load_l2_misses=20))
        assert missy > clean
        # MLP overlap means less than the full serial latency.
        assert missy - clean < 20 * SMALL_CORE.memory_latency

    def test_store_misses_cheaper_than_load_misses(self):
        loads, _ = self._cycles(misses=MissProfile(load_l2_misses=20))
        stores, _ = self._cycles(misses=MissProfile(store_l2_misses=20))
        assert stores < loads

    def test_dependency_bound_can_dominate(self):
        cycles, breakdown = self._cycles(dep_cycles_per_iteration=500.0)
        assert breakdown["binding_bound"] == "dependency"
        assert cycles >= 1000 / 100 * 500 * 0.99

    def test_icache_misses_stall_frontend(self):
        clean, _ = self._cycles()
        stalled, _ = self._cycles(misses=MissProfile(icache_l1_misses=30))
        assert stalled == pytest.approx(clean + 30 * SMALL_CORE.l2.latency)

    def test_zero_instructions_rejected(self):
        with pytest.raises(ValueError):
            compute_cycles(
                SMALL_CORE, 0, _counts(alu=1), 1.0, 100, MissProfile()
            )
