"""Unit tests for dynamic trace expansion."""

import numpy as np
import pytest

from repro.codegen import generate_test_case
from repro.codegen.wrapper import GenerationOptions
from repro.isa.instructions import InstrClass
from repro.sim.trace import expand


def _program(loop_size=100, **overrides):
    knobs = dict(ADD=4, MUL=1, BEQ=1, BNE=1, LD=2, SD=1,
                 REG_DIST=3, MEM_SIZE=64, MEM_STRIDE=16,
                 MEM_TEMP1=1, MEM_TEMP2=1, B_PATTERN=0.5)
    knobs.update(overrides)
    return generate_test_case(knobs, GenerationOptions(loop_size=loop_size))


class TestExpand:
    def test_total_instructions(self):
        trace = expand(_program(100), iterations=7)
        assert trace.total_instructions == 700
        assert trace.iterations == 7
        assert trace.loop_size == 100

    def test_memory_event_count(self):
        program = _program(100)
        trace = expand(program, iterations=5)
        per_iter = len(program.memory_instructions())
        assert len(trace.mem_lines) == 5 * per_iter
        assert len(trace.mem_pcs) == 5 * per_iter
        assert len(trace.mem_is_store) == 5 * per_iter

    def test_branch_event_count(self):
        program = _program(100)
        trace = expand(program, iterations=4)
        per_iter = len(program.branch_instructions())
        assert len(trace.branch_outcomes) == 4 * per_iter

    def test_iteration_major_interleaving(self):
        program = _program(100)
        trace = expand(program, iterations=3)
        mem = program.memory_instructions()
        m = len(mem)
        # First block of m PCs equals the static PC order.
        static_pcs = [i.address for i in mem]
        assert list(trace.mem_pcs[:m]) == static_pcs
        assert list(trace.mem_pcs[m:2 * m]) == static_pcs

    def test_store_flags_match_static_classes(self):
        program = _program(100)
        trace = expand(program, iterations=2)
        mem = program.memory_instructions()
        expected = [i.iclass is InstrClass.STORE for i in mem]
        assert list(trace.mem_is_store[:len(mem)]) == expected

    def test_class_counts_scale_with_iterations(self):
        program = _program(100)
        t1 = expand(program, iterations=1)
        t5 = expand(program, iterations=5)
        for iclass, count in t1.class_counts.items():
            assert t5.class_counts[iclass] == count * 5

    def test_memoryless_program(self):
        program = _program(60, LD=0, SD=0)
        trace = expand(program, iterations=3)
        assert len(trace.mem_lines) == 0
        assert trace.total_instructions == 180

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            expand(_program(50), iterations=0)

    def test_line_addresses_use_line_size(self):
        program = _program(100, MEM_STRIDE=64)
        trace = expand(program, iterations=2, line_bytes=64)
        byte_addrs = np.concatenate(
            [i.memory.addresses(2) for i in program.memory_instructions()]
        )
        assert set(trace.mem_lines) <= set(byte_addrs // 64)
