"""Unit tests for the cache models."""

import pytest

from repro.sim.cache import (
    SetAssociativeCache,
    StridePrefetcher,
    cyclic_code_hits,
    line_addresses,
)


class TestSetAssociativeCache:
    def test_cold_miss_then_hit(self):
        cache = SetAssociativeCache(1024, 2, 64)
        assert cache.access(5) is False
        assert cache.access(5) is True
        assert cache.hits == 1
        assert cache.misses == 1

    def test_lru_eviction_order(self):
        # One-set cache: 2 ways, 128 bytes, 64-byte lines.
        cache = SetAssociativeCache(128, 2, 64)
        a, b, c = 0, 1, 2
        cache.access(a)
        cache.access(b)
        cache.access(a)      # a is now MRU
        cache.access(c)      # evicts b (LRU)
        assert cache.access(a) is True
        assert cache.access(b) is False

    def test_set_isolation(self):
        cache = SetAssociativeCache(2 * 64 * 2, 2, 64)  # 2 sets, 2 ways
        # Lines 0 and 2 map to set 0; lines 1 and 3 to set 1.
        for line in (0, 2, 1, 3):
            cache.access(line)
        assert cache.access(0) is True
        assert cache.access(1) is True

    def test_install_does_not_count_access(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.install(9)
        assert cache.accesses == 0
        assert cache.access(9) is True

    def test_prefetch_hit_accounting(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.install(4, prefetch=True)
        assert cache.prefetch_installs == 1
        cache.access(4)
        assert cache.prefetch_hits == 1

    def test_reset_stats_keeps_contents(self):
        cache = SetAssociativeCache(1024, 2, 64)
        cache.access(1)
        cache.reset_stats()
        assert cache.misses == 0
        assert cache.access(1) is True

    def test_hit_rate_idle_is_one(self):
        assert SetAssociativeCache(1024, 2, 64).hit_rate == 1.0

    def test_bad_geometry_raises(self):
        with pytest.raises(ValueError):
            SetAssociativeCache(1000, 3, 64)

    def test_contains_has_no_side_effects(self):
        cache = SetAssociativeCache(1024, 2, 64)
        assert cache.contains(7) is False
        assert cache.accesses == 0


class TestStridePrefetcher:
    def test_constant_stride_confirms_and_prefetches(self):
        target = SetAssociativeCache(4096, 4, 64)
        pf = StridePrefetcher(target, degree=1)
        pc = 0x400
        for n in range(4):
            pf.observe(pc, 100 + 3 * n)
        # After confirmation the next line (100 + 3*3 + 3) is resident.
        assert target.contains(112)

    def test_irregular_stride_does_not_prefetch(self):
        target = SetAssociativeCache(4096, 4, 64)
        pf = StridePrefetcher(target, degree=2)
        pc = 0x400
        for line in (10, 25, 11, 60, 13):
            pf.observe(pc, line)
        assert target.prefetch_installs == 0

    def test_distinct_pcs_tracked_separately(self):
        target = SetAssociativeCache(1 << 16, 4, 64)
        pf = StridePrefetcher(target, degree=1)
        for n in range(4):
            pf.observe(0x100, 1000 + 5 * n)
            pf.observe(0x200, 9000 + 7 * n)
        assert target.contains(1000 + 5 * 3 + 5)
        assert target.contains(9000 + 7 * 3 + 7)


class TestCyclicCodeHits:
    def test_fitting_loop_hits_in_steady_state(self):
        hits, misses = cyclic_code_hits(
            num_lines=8, num_sets=4, assoc=2, iterations=10
        )
        assert misses == 0          # cold misses belong to warmup
        assert hits == 8 * 10

    def test_thrashing_loop_mostly_misses(self):
        hits, misses = cyclic_code_hits(
            num_lines=64, num_sets=4, assoc=2, iterations=10
        )
        total = 64 * 10
        assert hits + misses == total
        # Random-replacement-like residency: hit rate near
        # assoc/lines_per_set * reorder factor = 2/16 * 0.85.
        assert hits / total == pytest.approx(2 / 16 * 0.85, abs=0.02)

    def test_zero_inputs(self):
        assert cyclic_code_hits(0, 4, 2, 10) == (0, 0)
        assert cyclic_code_hits(8, 4, 2, 0) == (0, 0)

    def test_hit_rate_monotone_in_code_size(self):
        rates = []
        for lines in (8, 32, 64, 128, 512):
            hits, misses = cyclic_code_hits(lines, 8, 4, 50)
            rates.append(hits / (hits + misses))
        assert all(a >= b - 1e-9 for a, b in zip(rates, rates[1:]))


class TestLineAddresses:
    def test_conversion(self):
        import numpy as np

        lines = line_addresses(np.array([0, 63, 64, 129]), 64)
        assert list(lines) == [0, 0, 1, 2]


class TestReplacementPolicies:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="replacement policy"):
            SetAssociativeCache(1024, 2, 64, policy="plru")

    def test_fifo_ignores_recency(self):
        # One set, 2 ways.  Under FIFO, re-touching A does not protect it.
        cache = SetAssociativeCache(128, 2, 64, policy="fifo")
        cache.access(0)          # A in
        cache.access(1)          # B in
        cache.access(0)          # A hit (no reorder under FIFO)
        cache.access(2)          # evicts A (oldest), not B
        assert cache.access(1) is True
        assert cache.access(0) is False

    def test_lru_protects_recently_used(self):
        cache = SetAssociativeCache(128, 2, 64, policy="lru")
        cache.access(0)
        cache.access(1)
        cache.access(0)
        cache.access(2)          # evicts B under LRU
        assert cache.access(0) is True

    def test_random_policy_is_deterministic_per_seed(self):
        def run(seed):
            cache = SetAssociativeCache(128, 2, 64, policy="random",
                                        seed=seed)
            for line in (0, 1, 2, 3, 0, 1, 2, 3):
                cache.access(line)
            return cache.hits

        assert run(7) == run(7)

    def test_policies_agree_when_no_eviction_happens(self):
        for policy in ("lru", "fifo", "random"):
            cache = SetAssociativeCache(1024, 4, 64, policy=policy)
            for line in (0, 1, 2, 0, 1, 2):
                cache.access(line)
            assert cache.hits == 3
            assert cache.misses == 3
