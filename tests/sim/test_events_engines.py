"""Stage-2 event engines: warmup-accounting fixes and engine agreement.

The vectorized engine (numpy array kernels, steady-state extrapolation)
must be bit-identical to the reference per-access loops on every event
count, for every warmup boundary and footprint regime.  The reference
loops are the oracle; these tests also pin the fixed warmup semantics:

* a warmup at/past the end of the trace leaves an empty measurement
  window — everything (including the TLB counters that used to leak) is
  zero;
* a line prefetched *and first used* during warmup consumes its
  prefetched mark, so it can no longer inflate a later measured
  ``prefetch_hits``.
"""

import itertools
from dataclasses import replace

import numpy as np
import pytest

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.sim import LARGE_CORE, SMALL_CORE, Simulator
from repro.sim.artifact import TraceArtifact
from repro.sim.config import CacheGeometry
from repro.sim.events import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINES,
    MemoryEvents,
    resolve_engine,
    simulate_branches,
    simulate_memory,
)
from repro.sim.trace import ExpandedTrace

KNOBS = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1,
             LD=3, LW=1, SD=1, SW=1,
             REG_DIST=4, MEM_STRIDE=64,
             MEM_TEMP1=2, MEM_TEMP2=1, B_PATTERN=0.3)

#: Footprint knob values (KB) spanning the hierarchy: fits in L1 /
#: fits in L2 / streams past the L2.
FOOTPRINTS = (8, 128, 2048)
WARMUP_FRACTIONS = (0.0, 0.2, 1.0)


def mem_trace(lines, pcs=None, stores=None) -> ExpandedTrace:
    """A synthetic one-access-per-iteration memory trace."""
    n = len(lines)
    return ExpandedTrace(
        iterations=n,
        loop_size=1,
        line_bytes=64,
        mem_pcs=np.asarray(
            pcs if pcs is not None else [4] * n, dtype=np.int64
        ),
        mem_lines=np.asarray(lines, dtype=np.int64),
        mem_is_store=np.asarray(
            stores if stores is not None else [False] * n, dtype=bool
        ),
        branch_pcs=np.empty(0, dtype=np.int64),
        branch_outcomes=np.empty(0, dtype=bool),
        class_counts={},
    )


def branch_trace(pcs, outcomes) -> ExpandedTrace:
    """A synthetic one-branch-per-iteration outcome trace."""
    n = len(pcs)
    return ExpandedTrace(
        iterations=n,
        loop_size=1,
        line_bytes=64,
        mem_pcs=np.empty(0, dtype=np.int64),
        mem_lines=np.empty(0, dtype=np.int64),
        mem_is_store=np.empty(0, dtype=bool),
        branch_pcs=np.asarray(pcs, dtype=np.int64),
        branch_outcomes=np.asarray(outcomes, dtype=bool),
        class_counts={},
    )


class TestEngineSelection:
    def test_known_engines(self):
        assert DEFAULT_ENGINE in ENGINES
        for engine in ENGINES:
            assert resolve_engine(engine) == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown event engine"):
            resolve_engine("warp-drive")

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert resolve_engine() == "reference"
        assert resolve_engine("vectorized") == "vectorized"
        monkeypatch.setenv(ENGINE_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            resolve_engine()


class TestWarmupOverrun:
    """Warmup boundaries at/past the trace end: empty measured window."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("overrun", [0, 1, 1000])
    def test_memory_overrun_counts_nothing(self, engine, overrun):
        trace = mem_trace([(16 * t) % 256 for t in range(24)])
        warmup = len(trace.mem_lines) + overrun
        events = simulate_memory(SMALL_CORE, trace, warmup, engine=engine)
        # Before the fix the counting flag never flipped, so the cache
        # counters were zero but dtlb_misses/dtlb_accesses still carried
        # the warmup-inclusive TLB totals.
        assert events == MemoryEvents()
        assert events.dtlb_accesses == 0

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("overrun", [0, 1, 1000])
    def test_branch_overrun_counts_nothing(self, engine, overrun):
        trace = branch_trace([8] * 31, [t % 3 == 0 for t in range(31)])
        warmup = len(trace.branch_pcs) + overrun
        assert simulate_branches(
            SMALL_CORE, trace, warmup, engine=engine
        ) == (0, 0)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_negative_warmup_clamps_to_zero(self, engine):
        trace = mem_trace([(64 * t) % 1024 for t in range(16)])
        assert simulate_memory(
            SMALL_CORE, trace, -5, engine=engine
        ) == simulate_memory(SMALL_CORE, trace, 0, engine=engine)


class TestPrefetchWarmupLeakage:
    """Warmup-covered prefetch first-uses must not count later."""

    #: Tiny direct-mapped L1 (every access misses to the L2) under a
    #: prefetching L2 the 32-line stream fits in, so after one sweep the
    #: steady state re-prefetches nothing.
    CORE = replace(
        LARGE_CORE,
        l1d=CacheGeometry(1024, 1, latency=3),
        l2=CacheGeometry(64 * 1024, 8, latency=12),
    )
    LINES = [(16 * t) % 512 for t in range(96)]

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "warmup,installs,hits",
        [
            # No warmup: every install/first-use is measured.
            (0, 31, 29),
            # The stride confirms during a 4-access warmup; first-uses
            # still land in the measured window.
            (4, 28, 28),
            # A 40-access warmup covers the whole first sweep: every
            # prefetch first-use happens during warmup, and the resident
            # stream re-prefetches nothing, so the measured counts are
            # zero.  The unfixed kernel kept the warmup-used lines in
            # the prefetched set and reported their next measured L2
            # hits as prefetch hits.
            (40, 0, 0),
        ],
    )
    def test_pinned_prefetch_accounting(self, engine, warmup, installs, hits):
        events = simulate_memory(
            self.CORE, mem_trace(self.LINES), warmup, engine=engine
        )
        assert events.prefetch_installs == installs
        assert events.prefetch_hits == hits


class TestEnginesBitIdentical:
    """Reference and vectorized engines agree event-for-event."""

    @pytest.mark.parametrize(
        "mem_size,warmup_fraction",
        list(itertools.product(FOOTPRINTS, WARMUP_FRACTIONS)),
    )
    @pytest.mark.parametrize("core", [SMALL_CORE, LARGE_CORE],
                             ids=["small", "large"])
    def test_generated_programs_agree(self, mem_size, warmup_fraction, core):
        program = generate_test_case(
            dict(KNOBS, MEM_SIZE=mem_size),
            GenerationOptions(loop_size=120),
        )
        artifact = TraceArtifact.build(program, 6_000)
        warmup_iters, measure_iters = artifact.schedule(
            core, warmup_fraction
        )
        trace = artifact.trace(
            warmup_iters + measure_iters, core.l1d.line_bytes
        )
        warmup_mem = warmup_iters * artifact.mem_per_iter
        warmup_br = warmup_iters * artifact.br_per_iter
        assert simulate_memory(
            core, trace, warmup_mem, engine="reference"
        ) == simulate_memory(core, trace, warmup_mem, engine="vectorized")
        assert simulate_branches(
            core, trace, warmup_br, engine="reference"
        ) == simulate_branches(core, trace, warmup_br, engine="vectorized")

    def test_full_simulator_stats_agree(self):
        program = generate_test_case(dict(KNOBS, MEM_SIZE=128))
        for core in (SMALL_CORE, LARGE_CORE):
            assert Simulator(core).run(
                program, instructions=8_000, engine="reference"
            ) == Simulator(core).run(
                program, instructions=8_000, engine="vectorized"
            )

    @pytest.mark.parametrize("history_pcs", [True, False])
    def test_gshare_scan_against_reference_on_random_traces(
        self, history_pcs
    ):
        # Aliasing-heavy random traces exercise the segmented
        # saturating-counter scan far from the periodic easy case.
        rng = np.random.default_rng(7)
        for trial in range(5):
            n = int(rng.integers(1, 400))
            pcs = (
                rng.integers(0, 64, n) * 4 if history_pcs
                else np.full(n, 16)
            )
            outcomes = rng.random(n) < 0.5
            trace = branch_trace(pcs, outcomes)
            warmup = int(rng.integers(0, n + 2))
            for core in (SMALL_CORE, LARGE_CORE):
                assert simulate_branches(
                    core, trace, warmup, engine="reference"
                ) == simulate_branches(
                    core, trace, warmup, engine="vectorized"
                )

    def test_memory_extrapolation_on_long_periodic_trace(self):
        # Long periodic trace with a warmup cutting mid-period: the
        # vectorized engine extrapolates whole steady-state cycles and
        # must still match the reference loop exactly.
        pattern = [(16 * t) % 512 for t in range(32)]
        lines = pattern * 40
        trace = mem_trace(lines)
        for warmup in (0, 7, 333, len(lines) - 1):
            for core in (SMALL_CORE, TestPrefetchWarmupLeakage.CORE):
                assert simulate_memory(
                    core, trace, warmup, engine="reference"
                ) == simulate_memory(
                    core, trace, warmup, engine="vectorized"
                )

    def test_memory_aperiodic_trace_falls_back(self):
        # A non-repeating stream defeats period detection; the engine
        # must fall back to straight simulation and still agree.
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 4096, 300)
        stores = rng.random(300) < 0.3
        trace = mem_trace(lines.tolist(), stores=stores.tolist())
        for warmup in (0, 100):
            assert simulate_memory(
                LARGE_CORE, trace, warmup, engine="reference"
            ) == simulate_memory(
                LARGE_CORE, trace, warmup, engine="vectorized"
            )


class TestEngineMemoization:
    def test_memo_keys_are_engine_stamped(self):
        program = generate_test_case(dict(KNOBS, MEM_SIZE=16))
        artifact = TraceArtifact.build(program, 4_000)
        warmup, measure = artifact.schedule(SMALL_CORE, 0.2)
        for engine in ENGINES:
            artifact.memory_events(
                SMALL_CORE, warmup, warmup + measure, engine=engine
            )
            artifact.branch_events(
                SMALL_CORE, warmup, warmup + measure, engine=engine
            )
        # Identical results, but kept under distinct engine-stamped keys
        # so persisted artifacts can never mix engine provenance.
        assert len(artifact._memory) == len(ENGINES)
        assert len(artifact._branches) == len(ENGINES)
        assert len(set(artifact._memory)) == len(ENGINES)
        (first, second) = artifact._memory.values()
        assert first == second
