"""Stage-2 event engines: warmup-accounting fixes and engine agreement.

The vectorized engine (numpy array kernels, steady-state extrapolation)
must be bit-identical to the reference per-access loops on every event
count, for every warmup boundary and footprint regime.  The reference
loops are the oracle; these tests also pin the fixed warmup semantics:

* a warmup at/past the end of the trace leaves an empty measurement
  window — everything (including the TLB counters that used to leak) is
  zero;
* a line prefetched *and first used* during warmup consumes its
  prefetched mark, so it can no longer inflate a later measured
  ``prefetch_hits``.
"""

import itertools
import pickle
from dataclasses import replace

import numpy as np
import pytest

import repro.sim.events as events_mod
from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.sim import LARGE_CORE, SMALL_CORE, Simulator
from repro.sim.artifact import TraceArtifact, TraceArtifactCache
from repro.sim.branch import predictor_for_core
from repro.sim.config import CacheGeometry
from repro.sim.events import (
    DEFAULT_ENGINE,
    ENGINE_ENV_VAR,
    ENGINES,
    MemoryEvents,
    branch_event_key,
    engine_path_counts,
    reset_engine_path_counts,
    resolve_engine,
    simulate_branches,
    simulate_branches_batch,
    simulate_memory,
    simulate_memory_batch,
)
from repro.sim.trace import ExpandedTrace

KNOBS = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1,
             LD=3, LW=1, SD=1, SW=1,
             REG_DIST=4, MEM_STRIDE=64,
             MEM_TEMP1=2, MEM_TEMP2=1, B_PATTERN=0.3)

#: Footprint knob values (KB) spanning the hierarchy: fits in L1 /
#: fits in L2 / streams past the L2.
FOOTPRINTS = (8, 128, 2048)
WARMUP_FRACTIONS = (0.0, 0.2, 1.0)


def mem_trace(lines, pcs=None, stores=None) -> ExpandedTrace:
    """A synthetic one-access-per-iteration memory trace."""
    n = len(lines)
    return ExpandedTrace(
        iterations=n,
        loop_size=1,
        line_bytes=64,
        mem_pcs=np.asarray(
            pcs if pcs is not None else [4] * n, dtype=np.int64
        ),
        mem_lines=np.asarray(lines, dtype=np.int64),
        mem_is_store=np.asarray(
            stores if stores is not None else [False] * n, dtype=bool
        ),
        branch_pcs=np.empty(0, dtype=np.int64),
        branch_outcomes=np.empty(0, dtype=bool),
        class_counts={},
    )


def branch_trace(pcs, outcomes) -> ExpandedTrace:
    """A synthetic one-branch-per-iteration outcome trace."""
    n = len(pcs)
    return ExpandedTrace(
        iterations=n,
        loop_size=1,
        line_bytes=64,
        mem_pcs=np.empty(0, dtype=np.int64),
        mem_lines=np.empty(0, dtype=np.int64),
        mem_is_store=np.empty(0, dtype=bool),
        branch_pcs=np.asarray(pcs, dtype=np.int64),
        branch_outcomes=np.asarray(outcomes, dtype=bool),
        class_counts={},
    )


class TestEngineSelection:
    def test_known_engines(self):
        assert DEFAULT_ENGINE in ENGINES
        for engine in ENGINES:
            assert resolve_engine(engine) == engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown event engine"):
            resolve_engine("warp-drive")

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv(ENGINE_ENV_VAR, "reference")
        assert resolve_engine() == "reference"
        assert resolve_engine("vectorized") == "vectorized"
        monkeypatch.setenv(ENGINE_ENV_VAR, "bogus")
        with pytest.raises(ValueError):
            resolve_engine()


class TestWarmupOverrun:
    """Warmup boundaries at/past the trace end: empty measured window."""

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("overrun", [0, 1, 1000])
    def test_memory_overrun_counts_nothing(self, engine, overrun):
        trace = mem_trace([(16 * t) % 256 for t in range(24)])
        warmup = len(trace.mem_lines) + overrun
        events = simulate_memory(SMALL_CORE, trace, warmup, engine=engine)
        # Before the fix the counting flag never flipped, so the cache
        # counters were zero but dtlb_misses/dtlb_accesses still carried
        # the warmup-inclusive TLB totals.
        assert events == MemoryEvents()
        assert events.dtlb_accesses == 0

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize("overrun", [0, 1, 1000])
    def test_branch_overrun_counts_nothing(self, engine, overrun):
        trace = branch_trace([8] * 31, [t % 3 == 0 for t in range(31)])
        warmup = len(trace.branch_pcs) + overrun
        assert simulate_branches(
            SMALL_CORE, trace, warmup, engine=engine
        ) == (0, 0)

    @pytest.mark.parametrize("engine", ENGINES)
    def test_negative_warmup_clamps_to_zero(self, engine):
        trace = mem_trace([(64 * t) % 1024 for t in range(16)])
        assert simulate_memory(
            SMALL_CORE, trace, -5, engine=engine
        ) == simulate_memory(SMALL_CORE, trace, 0, engine=engine)


class TestPrefetchWarmupLeakage:
    """Warmup-covered prefetch first-uses must not count later."""

    #: Tiny direct-mapped L1 (every access misses to the L2) under a
    #: prefetching L2 the 32-line stream fits in, so after one sweep the
    #: steady state re-prefetches nothing.
    CORE = replace(
        LARGE_CORE,
        l1d=CacheGeometry(1024, 1, latency=3),
        l2=CacheGeometry(64 * 1024, 8, latency=12),
    )
    LINES = [(16 * t) % 512 for t in range(96)]

    @pytest.mark.parametrize("engine", ENGINES)
    @pytest.mark.parametrize(
        "warmup,installs,hits",
        [
            # No warmup: every install/first-use is measured.
            (0, 31, 29),
            # The stride confirms during a 4-access warmup; first-uses
            # still land in the measured window.
            (4, 28, 28),
            # A 40-access warmup covers the whole first sweep: every
            # prefetch first-use happens during warmup, and the resident
            # stream re-prefetches nothing, so the measured counts are
            # zero.  The unfixed kernel kept the warmup-used lines in
            # the prefetched set and reported their next measured L2
            # hits as prefetch hits.
            (40, 0, 0),
        ],
    )
    def test_pinned_prefetch_accounting(self, engine, warmup, installs, hits):
        events = simulate_memory(
            self.CORE, mem_trace(self.LINES), warmup, engine=engine
        )
        assert events.prefetch_installs == installs
        assert events.prefetch_hits == hits


class TestEnginesBitIdentical:
    """Reference and vectorized engines agree event-for-event."""

    @pytest.mark.parametrize(
        "mem_size,warmup_fraction",
        list(itertools.product(FOOTPRINTS, WARMUP_FRACTIONS)),
    )
    @pytest.mark.parametrize("core", [SMALL_CORE, LARGE_CORE],
                             ids=["small", "large"])
    def test_generated_programs_agree(self, mem_size, warmup_fraction, core):
        program = generate_test_case(
            dict(KNOBS, MEM_SIZE=mem_size),
            GenerationOptions(loop_size=120),
        )
        artifact = TraceArtifact.build(program, 6_000)
        warmup_iters, measure_iters = artifact.schedule(
            core, warmup_fraction
        )
        trace = artifact.trace(
            warmup_iters + measure_iters, core.l1d.line_bytes
        )
        warmup_mem = warmup_iters * artifact.mem_per_iter
        warmup_br = warmup_iters * artifact.br_per_iter
        assert simulate_memory(
            core, trace, warmup_mem, engine="reference"
        ) == simulate_memory(core, trace, warmup_mem, engine="vectorized")
        assert simulate_branches(
            core, trace, warmup_br, engine="reference"
        ) == simulate_branches(core, trace, warmup_br, engine="vectorized")

    def test_full_simulator_stats_agree(self):
        program = generate_test_case(dict(KNOBS, MEM_SIZE=128))
        for core in (SMALL_CORE, LARGE_CORE):
            assert Simulator(core).run(
                program, instructions=8_000, engine="reference"
            ) == Simulator(core).run(
                program, instructions=8_000, engine="vectorized"
            )

    @pytest.mark.parametrize("history_pcs", [True, False])
    def test_gshare_scan_against_reference_on_random_traces(
        self, history_pcs
    ):
        # Aliasing-heavy random traces exercise the segmented
        # saturating-counter scan far from the periodic easy case.
        rng = np.random.default_rng(7)
        for trial in range(5):
            n = int(rng.integers(1, 400))
            pcs = (
                rng.integers(0, 64, n) * 4 if history_pcs
                else np.full(n, 16)
            )
            outcomes = rng.random(n) < 0.5
            trace = branch_trace(pcs, outcomes)
            warmup = int(rng.integers(0, n + 2))
            for core in (SMALL_CORE, LARGE_CORE):
                assert simulate_branches(
                    core, trace, warmup, engine="reference"
                ) == simulate_branches(
                    core, trace, warmup, engine="vectorized"
                )

    def test_memory_extrapolation_on_long_periodic_trace(self):
        # Long periodic trace with a warmup cutting mid-period: the
        # vectorized engine extrapolates whole steady-state cycles and
        # must still match the reference loop exactly.
        pattern = [(16 * t) % 512 for t in range(32)]
        lines = pattern * 40
        trace = mem_trace(lines)
        for warmup in (0, 7, 333, len(lines) - 1):
            for core in (SMALL_CORE, TestPrefetchWarmupLeakage.CORE):
                assert simulate_memory(
                    core, trace, warmup, engine="reference"
                ) == simulate_memory(
                    core, trace, warmup, engine="vectorized"
                )

    def test_memory_aperiodic_trace_agrees(self):
        # A non-repeating stream defeats period detection; the engine
        # takes the recency-rank rounds path and must still agree.
        rng = np.random.default_rng(11)
        lines = rng.integers(0, 4096, 300)
        stores = rng.random(300) < 0.3
        trace = mem_trace(lines.tolist(), stores=stores.tolist())
        for warmup in (0, 100):
            assert simulate_memory(
                LARGE_CORE, trace, warmup, engine="reference"
            ) == simulate_memory(
                LARGE_CORE, trace, warmup, engine="vectorized"
            )


class TestEngineMemoization:
    def test_memo_keys_are_engine_stamped(self):
        program = generate_test_case(dict(KNOBS, MEM_SIZE=16))
        artifact = TraceArtifact.build(program, 4_000)
        warmup, measure = artifact.schedule(SMALL_CORE, 0.2)
        for engine in ENGINES:
            artifact.memory_events(
                SMALL_CORE, warmup, warmup + measure, engine=engine
            )
            artifact.branch_events(
                SMALL_CORE, warmup, warmup + measure, engine=engine
            )
        # Identical results, but kept under distinct engine-stamped keys
        # so persisted artifacts can never mix engine provenance.
        assert len(artifact._memory) == len(ENGINES)
        assert len(artifact._branches) == len(ENGINES)
        assert len(set(artifact._memory)) == len(ENGINES)
        (first, second) = artifact._memory.values()
        assert first == second


class TestTracePeriodCandidates:
    def test_period_past_first_eight_candidates(self):
        # Nine identical leading rows produce eight bogus equal-row
        # candidates (offsets 1..8) before the true period of 10; the
        # old detector silently capped candidates at [:8] and
        # misclassified this trace as aperiodic.
        trace = mem_trace(([0] * 9 + [1]) * 6)
        assert events_mod._trace_period(trace) == 10

    def test_genuinely_aperiodic_stays_zero(self):
        rng = np.random.default_rng(2)
        trace = mem_trace(rng.integers(0, 1 << 20, 200).tolist())
        assert events_mod._trace_period(trace) == 0


class TestBranchEventKey:
    def test_predictor_kinds_do_not_collide(self):
        # gshare / bimodal / tournament variants of one family share
        # (entries, history_bits); the key must still distinguish them
        # or the branch-event memo serves one kind the other's counts.
        names = ["small", "small-bimodal", "small-tournament",
                 "large", "large-bimodal", "large-tournament"]
        keys = [
            branch_event_key(replace(SMALL_CORE, name=name))
            for name in names
        ]
        assert len(set(keys)) == len(keys)

    def test_tournament_key_carries_chooser_size(self):
        key = branch_event_key(replace(SMALL_CORE, name="small-tournament"))
        assert key[0] == "tournament"
        predictor = predictor_for_core("small-tournament")
        assert key[-1] == predictor.chooser.entries

    def test_kinds_produce_distinct_counts(self):
        # Few hot PCs, some with periodic per-PC patterns (gshare
        # learns them, bimodal cannot), some random — a trace where
        # the three kinds genuinely disagree.
        rng = np.random.default_rng(5)
        pcs = (rng.integers(0, 16, 600) * 4).tolist()
        outcomes = []
        per_pc = {}
        for pc in pcs:
            k = per_pc.get(pc, 0)
            outcomes.append(
                bool(k % 3) if pc % 8 == 0 else bool(rng.random() < 0.5)
            )
            per_pc[pc] = k + 1
        trace = branch_trace(pcs, outcomes)
        results = {
            name: simulate_branches(
                replace(SMALL_CORE, name=name), trace, 0
            )
            for name in ("small", "small-bimodal", "small-tournament")
        }
        assert len(set(results.values())) == 3


class TestEnginePathObservability:
    def setup_method(self):
        reset_engine_path_counts()

    def test_periodic_aperiodic_and_reference_paths(self):
        periodic = mem_trace([(16 * t) % 512 for t in range(32)] * 40)
        rng = np.random.default_rng(3)
        aperiodic = mem_trace(rng.integers(0, 4096, 400).tolist())
        simulate_memory(SMALL_CORE, periodic, 10, engine="vectorized")
        simulate_memory(SMALL_CORE, aperiodic, 10, engine="vectorized")
        simulate_memory(SMALL_CORE, aperiodic, 10, engine="reference")
        counts = engine_path_counts()
        assert counts["memory.vectorized.periodic"] == 1
        assert counts["memory.vectorized.aperiodic"] == 1
        assert counts["memory.reference"] == 1
        assert "memory.vectorized.straight" not in counts

    def test_tiny_aperiodic_trace_takes_straight_path(self):
        rng = np.random.default_rng(4)
        tiny = mem_trace(rng.integers(0, 4096, 40).tolist())
        simulate_memory(SMALL_CORE, tiny, 0, engine="vectorized")
        assert engine_path_counts()["memory.vectorized.straight"] == 1

    def test_branch_paths(self):
        rng = np.random.default_rng(6)
        trace = branch_trace(
            (rng.integers(0, 1 << 12, 200) * 4).tolist(),
            (rng.random(200) < 0.5).tolist(),
        )
        simulate_branches(SMALL_CORE, trace, 0, engine="vectorized")
        simulate_branches(SMALL_CORE, trace, 0, engine="reference")
        counts = engine_path_counts()
        assert counts["branch.vectorized.scan"] == 1
        assert counts["branch.reference"] == 1

    def test_reset_clears(self):
        simulate_branches(
            SMALL_CORE, branch_trace([4], [True]), 0, engine="reference"
        )
        assert engine_path_counts()
        reset_engine_path_counts()
        assert engine_path_counts() == {}


class TestTournamentAndBimodalAgreement:
    """Cross-engine equality for the predictor kinds the scan engine
    gained in this change (chooser steps include the identity)."""

    @pytest.mark.parametrize(
        "name", ["small-bimodal", "small-tournament", "large-tournament"]
    )
    def test_random_traces_agree(self, name):
        core = replace(
            LARGE_CORE if name.startswith("large") else SMALL_CORE,
            name=name,
        )
        rng = np.random.default_rng(17)
        for trial in range(4):
            n = int(rng.integers(1, 800))
            pcs = (rng.integers(0, 1 << 13, n) * 4).tolist()
            outcomes = (rng.random(n) < rng.random()).tolist()
            trace = branch_trace(pcs, outcomes)
            for warmup in (0, n // 3, n):
                assert simulate_branches(
                    core, trace, warmup, engine="reference"
                ) == simulate_branches(
                    core, trace, warmup, engine="vectorized"
                )


class TestAperiodicVectorizedAgreement:
    """The recency-rank rounds kernel must match the reference loop on
    aperiodic streams — including prefetching cores, where the L2 sees
    an exactly-replayed miss substream."""

    @pytest.mark.parametrize("core", [SMALL_CORE, LARGE_CORE],
                             ids=lambda c: c.name)
    def test_random_aperiodic_streams_agree(self, core):
        rng = np.random.default_rng(23)
        for trial in range(4):
            n = int(rng.integers(150, 900))
            lines = rng.integers(0, 6000, n).tolist()
            stores = (rng.random(n) < 0.3).tolist()
            pcs = (rng.integers(0, 64, n) * 4).tolist()
            trace = mem_trace(lines, pcs=pcs, stores=stores)
            for warmup in (0, n // 4):
                assert simulate_memory(
                    core, trace, warmup, engine="reference"
                ) == simulate_memory(
                    core, trace, warmup, engine="vectorized"
                )

    def test_streaming_program_takes_rounds_path_and_agrees(self):
        # MEM_SIZE far past the L2 keeps the window inside one sweep:
        # no period, so this exercises the aperiodic kernel end-to-end.
        program = generate_test_case(
            dict(KNOBS, MEM_SIZE=2048), GenerationOptions(seed=9)
        )
        artifact = TraceArtifact.build(program, 20_000)
        warmup, measure = artifact.schedule(SMALL_CORE, 0.2)
        trace = artifact.trace(warmup + measure, SMALL_CORE.l1d.line_bytes)
        reset_engine_path_counts()
        ref = simulate_memory(
            SMALL_CORE, trace, warmup * artifact.mem_per_iter,
            engine="reference",
        )
        vec = simulate_memory(
            SMALL_CORE, trace, warmup * artifact.mem_per_iter,
            engine="vectorized",
        )
        assert ref == vec
        counts = engine_path_counts()
        assert counts.get("memory.vectorized.aperiodic") == 1
        assert "memory.vectorized.straight" not in counts


class TestBatchEntryPoints:
    CORES = [
        SMALL_CORE,
        LARGE_CORE,
        replace(SMALL_CORE, name="small-tournament"),
        replace(LARGE_CORE, name="large-bimodal"),
        replace(SMALL_CORE,
                l1d=replace(SMALL_CORE.l1d, assoc=2)),
        SMALL_CORE,  # duplicate: must dedupe, not recompute
    ]

    def test_simulate_memory_batch_matches_singles(self):
        rng = np.random.default_rng(29)
        n = 1500
        trace = mem_trace(
            rng.integers(0, 4000, n).tolist(),
            pcs=(rng.integers(0, 64, n) * 4).tolist(),
            stores=(rng.random(n) < 0.3).tolist(),
        )
        warmups = [0, 13, 200, 13, 0, 0]
        batch = simulate_memory_batch(
            self.CORES, trace, warmups, engine="vectorized"
        )
        singles = [
            simulate_memory(core, trace, warmup, engine="reference")
            for core, warmup in zip(self.CORES, warmups)
        ]
        assert batch == singles

    def test_simulate_branches_batch_matches_singles(self):
        rng = np.random.default_rng(31)
        n = 1200
        trace = branch_trace(
            (rng.integers(0, 1 << 13, n) * 4).tolist(),
            (rng.random(n) < 0.6).tolist(),
        )
        warmups = [0, 25, 100, 25, 0, n + 5]
        batch = simulate_branches_batch(
            self.CORES, trace, warmups, engine="vectorized"
        )
        singles = [
            simulate_branches(core, trace, warmup, engine="reference")
            for core, warmup in zip(self.CORES, warmups)
        ]
        assert batch == singles

    def test_batch_length_mismatch_rejected(self):
        trace = branch_trace([4], [True])
        with pytest.raises(ValueError, match="warmup"):
            simulate_branches_batch([SMALL_CORE], trace, [0, 0])
        with pytest.raises(ValueError, match="warmup"):
            simulate_memory_batch([SMALL_CORE], mem_trace([1]), [])

    def test_artifact_batch_accessors_fill_memos_identically(self):
        program = generate_test_case(
            dict(KNOBS, MEM_SIZE=128), GenerationOptions(seed=12)
        )
        batched = TraceArtifact.build(program, 8_000)
        single = TraceArtifact.build(program, 8_000)
        cores = self.CORES
        schedules = [batched.schedule(core, 0.2) for core in cores]
        warmups = [w for w, _ in schedules]
        iterations = [w + m for w, m in schedules]
        mem_batch = batched.memory_events_batch(cores, warmups, iterations)
        br_batch = batched.branch_events_batch(cores, warmups, iterations)
        mem_single = [
            single.memory_events(core, w, i)
            for core, w, i in zip(cores, warmups, iterations)
        ]
        br_single = [
            single.branch_events(core, w, i)
            for core, w, i in zip(cores, warmups, iterations)
        ]
        assert mem_batch == mem_single
        assert br_batch == br_single
        assert batched._memory == single._memory
        assert batched._branches == single._branches

    @pytest.mark.parametrize("mem_size", [16, 2048])
    def test_run_many_config_batch_bit_identical(self, mem_size):
        program = generate_test_case(
            dict(KNOBS, MEM_SIZE=mem_size), GenerationOptions(seed=8)
        )
        runs = {
            mode: Simulator.run_many(
                self.CORES, program,
                artifact_cache=TraceArtifactCache(),
                config_batch=mode == "batched",
                engine=engine,
            )
            for mode, engine in (
                ("batched", "vectorized"),
                ("per-config", "vectorized"),
                ("reference", "reference"),
            )
        }
        assert runs["batched"] == runs["per-config"] == runs["reference"]


class TestKernelCachePickling:
    def test_kernel_cache_excluded_from_pickles(self):
        trace = mem_trace([(16 * t) % 256 for t in range(300)])
        simulate_memory_batch(
            [SMALL_CORE, LARGE_CORE], trace, [0, 0], engine="vectorized"
        )
        assert trace._kernel_cache  # batching populated scratch
        clone = pickle.loads(pickle.dumps(trace))
        assert clone._kernel_cache == {}
        assert np.array_equal(clone.mem_lines, trace.mem_lines)

    def test_pre_batching_pickles_load(self):
        # Artifacts persisted before the scratch field existed unpickle
        # into traces with an empty (usable) cache.
        trace = mem_trace([1, 2, 3])
        state = trace.__getstate__()
        assert "_kernel_cache" not in state
        revived = ExpandedTrace.__new__(ExpandedTrace)
        revived.__setstate__(state)
        assert revived._kernel_cache == {}
