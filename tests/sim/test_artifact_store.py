"""DiskArtifactStore tests: schema stamps, LRU compaction, write races."""

import multiprocessing
import time

import pytest

from repro.codegen import generate_test_case
from repro.codegen.wrapper import GenerationOptions
from repro.sim.artifact import (
    DiskArtifactStore,
    TraceArtifact,
    TraceArtifactCache,
    attach_artifact_store,
    detach_artifact_store,
    trace_schema_fingerprint,
)
from repro.sim.config import core_by_name
from repro.sim.simulator import Simulator


@pytest.fixture(autouse=True)
def _no_leaked_store():
    """Tests attach process-wide stores; never leak one across tests."""
    detach_artifact_store()
    yield
    detach_artifact_store()


def _program(n: int = 0):
    return generate_test_case(
        {"ADD": n % 5 + 1, "LD": n % 3 + 1, "REG_DIST": 2 + n},
        GenerationOptions(loop_size=60),
    )


def _artifact(n: int = 0, instructions: int = 2_000) -> TraceArtifact:
    artifact = TraceArtifact.build(_program(n), instructions)
    artifact.trace(4, 64)  # memoize one stage so persistence is visible
    return artifact


class TestRoundtrip:
    def test_put_get_preserves_artifact_and_memos(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        artifact = _artifact()
        store.put(artifact)
        loaded = store.get(artifact.fingerprint, artifact.instructions)
        assert loaded is not None
        assert loaded.fingerprint == artifact.fingerprint
        assert loaded.instructions == artifact.instructions
        assert loaded.loop_size == artifact.loop_size
        # The memoized stages travel with the pickle — that is the point.
        assert loaded.memo_count() == artifact.memo_count()
        assert store.hits == 1

    def test_unknown_key_is_a_miss(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        assert store.get("deadbeef", 2_000) is None
        assert store.misses == 1

    def test_budget_keys_do_not_alias(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        artifact = _artifact(instructions=2_000)
        store.put(artifact)
        assert store.get(artifact.fingerprint, 4_000) is None

    def test_corrupt_entry_is_a_miss_not_an_error(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        artifact = _artifact()
        store.put(artifact)
        path = store._path(artifact.fingerprint, artifact.instructions)
        path.write_bytes(b"not a pickle")
        assert store.get(artifact.fingerprint, artifact.instructions) is None


class TestSchemaStamp:
    def test_entries_live_under_the_active_schema(self, tmp_path):
        store = DiskArtifactStore(tmp_path)
        assert store.schema == trace_schema_fingerprint()
        assert store.dir == tmp_path / trace_schema_fingerprint()

    def test_schema_bump_invalidates_old_entries(self, tmp_path):
        old = DiskArtifactStore(tmp_path, schema="schema-v1")
        artifact = _artifact()
        old.put(artifact)
        assert len(old) == 1
        new = DiskArtifactStore(tmp_path, schema="schema-v2")
        assert new.get(artifact.fingerprint, artifact.instructions) is None
        assert len(new) == 0
        # The old entries are untouched (a rollback still hits them).
        assert old.get(artifact.fingerprint, artifact.instructions) \
            is not None


class TestCompaction:
    def test_lru_compaction_keeps_newest_entries(self, tmp_path):
        store = DiskArtifactStore(tmp_path, max_entries=3)
        artifacts = [_artifact(n) for n in range(6)]
        for artifact in artifacts:
            store.put(artifact)
            time.sleep(0.02)  # distinct mtimes on coarse filesystems
        assert len(store) <= 3
        assert store.evictions >= 3
        # Oldest gone, newest present.
        first, last = artifacts[0], artifacts[-1]
        assert store.get(first.fingerprint, first.instructions) is None
        assert store.get(last.fingerprint, last.instructions) is not None

    def test_hits_refresh_recency(self, tmp_path):
        store = DiskArtifactStore(tmp_path, max_entries=2)
        keep, *rest = [_artifact(n) for n in range(4)]
        store.put(keep)
        for artifact in rest[:1]:
            time.sleep(0.02)
            store.put(artifact)
        time.sleep(0.02)
        # Touch the old entry, then push it over the cap with new ones.
        assert store.get(keep.fingerprint, keep.instructions) is not None
        time.sleep(0.02)
        store.put(rest[1])
        store.compact()
        assert store.get(keep.fingerprint, keep.instructions) is not None

    def test_rejects_bad_cap(self, tmp_path):
        with pytest.raises(ValueError):
            DiskArtifactStore(tmp_path, max_entries=0)


def _racing_writer(root, n, barrier):
    store = DiskArtifactStore(root)
    artifact = _artifact(0)  # same program → same fingerprint
    barrier.wait(timeout=20)
    for _ in range(10):
        store.put(artifact)


class TestConcurrentWriters:
    def test_two_processes_race_safely_on_one_fingerprint(self, tmp_path):
        barrier = multiprocessing.Barrier(2)
        writers = [
            multiprocessing.Process(
                target=_racing_writer, args=(str(tmp_path), n, barrier)
            )
            for n in range(2)
        ]
        for writer in writers:
            writer.start()
        for writer in writers:
            writer.join(timeout=60)
            assert writer.exitcode == 0
        # Exactly one entry, and it loads as a valid artifact.
        store = DiskArtifactStore(tmp_path)
        assert len(store) == 1
        reference = _artifact(0)
        loaded = store.get(reference.fingerprint, reference.instructions)
        assert loaded is not None
        assert loaded.fingerprint == reference.fingerprint
        # No stray temp files left behind by the race.
        assert list(store.dir.glob("*.tmp")) == []


class TestCacheIntegration:
    def test_fresh_cache_loads_from_attached_store(self, tmp_path):
        store = attach_artifact_store(tmp_path)
        program = _program(1)
        stats_cold = Simulator(core_by_name("small")).run(
            program, instructions=2_000
        )
        assert len(store) == 1  # run_many persisted the artifact
        # A brand-new simulator (fresh instance cache, e.g. a new
        # process) must load from the store instead of rebuilding.
        stats_warm = Simulator(core_by_name("small")).run(
            program, instructions=2_000
        )
        assert store.hits >= 1
        assert stats_warm == stats_cold

    def test_attach_is_idempotent_per_root(self, tmp_path):
        first = attach_artifact_store(tmp_path)
        second = attach_artifact_store(tmp_path)
        assert second is first
        other = attach_artifact_store(tmp_path / "other")
        assert other is not first

    def test_reattach_applies_new_cap(self, tmp_path):
        store = attach_artifact_store(tmp_path)
        for n in range(4):
            store.put(_artifact(n))
            time.sleep(0.02)
        assert len(store) == 4
        # Same root, new explicit cap: the cap must take effect (and
        # compact immediately), not be silently ignored.
        again = attach_artifact_store(tmp_path, max_entries=2)
        assert again is store
        assert store.max_entries == 2
        assert len(store) <= 2

    def test_micrograd_close_detaches_its_store(self, tmp_path):
        from repro.core.config import MicroGradConfig
        from repro.core.framework import MicroGrad
        from repro.sim.artifact import active_artifact_store

        config = MicroGradConfig(
            use_case="stress", metrics=("ipc",), core="small",
            max_epochs=1, instructions=2_000, loop_size=60,
            cache_dir=str(tmp_path),
        )
        mg = MicroGrad(config)
        assert active_artifact_store() is not None
        mg.close()
        # A later cache-less run must not inherit this run's store.
        assert active_artifact_store() is None

    def test_explicit_none_store_opts_out(self, tmp_path):
        attach_artifact_store(tmp_path)
        cache = TraceArtifactCache(store=None)
        assert cache.store is None
        cache.get_or_build(_program(2), 2_000)
        assert len(DiskArtifactStore(tmp_path)) == 0
