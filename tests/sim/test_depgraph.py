"""Unit tests for the dependency-graph critical-path analysis."""

import pytest

from repro.codegen import generate_test_case
from repro.codegen.wrapper import GenerationOptions
from repro.sim.config import SMALL_CORE
from repro.sim.depgraph import critical_path_per_iteration, instruction_latency
from repro.isa.instructions import InstrClass


def _chain_program(dd, loop_size=100, mnemonic_weights=None):
    knobs = dict(mnemonic_weights or {"ADD": 1})
    knobs.update(REG_DIST=dd, B_PATTERN=0.0)
    return generate_test_case(knobs, GenerationOptions(loop_size=loop_size))


class TestCriticalPath:
    def test_serial_chain_costs_one_latency_per_instruction(self):
        program = _chain_program(dd=1, loop_size=100)
        cp = critical_path_per_iteration(program, SMALL_CORE)
        # dd=1 on single-cycle ADDs: ~1 cycle per instruction.
        assert cp == pytest.approx(100, rel=0.1)

    def test_parallel_chains_divide_the_path(self):
        cp1 = critical_path_per_iteration(_chain_program(1), SMALL_CORE)
        cp5 = critical_path_per_iteration(_chain_program(5), SMALL_CORE)
        assert cp5 < cp1 / 3

    def test_critical_path_monotone_in_dependency_distance(self):
        values = [
            critical_path_per_iteration(_chain_program(dd), SMALL_CORE)
            for dd in (1, 2, 4, 8)
        ]
        assert all(a >= b - 1e-9 for a, b in zip(values, values[1:]))

    def test_fp_latency_lengthens_the_path(self):
        int_cp = critical_path_per_iteration(
            _chain_program(2, mnemonic_weights={"ADD": 1}), SMALL_CORE
        )
        fp_cp = critical_path_per_iteration(
            _chain_program(2, mnemonic_weights={"FMULD": 1}), SMALL_CORE
        )
        assert fp_cp > int_cp * 2

    def test_empty_program_zero_path(self):
        from repro.isa.program import Program

        assert critical_path_per_iteration(Program(), SMALL_CORE) == 0.0

    def test_steady_state_increment_stable(self):
        program = _chain_program(3, loop_size=80)
        cp4 = critical_path_per_iteration(program, SMALL_CORE, unroll=4)
        cp8 = critical_path_per_iteration(program, SMALL_CORE, unroll=8)
        assert cp4 == pytest.approx(cp8, rel=0.05)


class TestInstructionLatency:
    def test_loads_use_l1d_latency(self):
        assert instruction_latency(3, InstrClass.LOAD, SMALL_CORE) == float(
            SMALL_CORE.l1d.latency
        )

    def test_stores_cost_one(self):
        assert instruction_latency(1, InstrClass.STORE, SMALL_CORE) == 1.0

    def test_alu_uses_definition_latency(self):
        assert instruction_latency(4, InstrClass.FP_ADD, SMALL_CORE) == 4.0
