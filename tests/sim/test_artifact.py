"""Golden determinism tests for the staged simulator pipeline.

The three-stage refactor (trace artifact -> event simulation -> batched
interval model) must be invisible in the numbers: one ``run`` matches
the straight-line reference computation bit for bit, ``run_many`` over a
batch of cores matches independent runs bit for bit, and a fixed
program/core pair still produces the exact statistics recorded from the
pre-pipeline simulator.
"""

import pickle
from dataclasses import replace

import pytest

from repro.codegen import generate_test_case
from repro.sim import (
    LARGE_CORE,
    SMALL_CORE,
    Simulator,
    TraceArtifactCache,
    program_fingerprint,
)
from repro.sim.artifact import TraceArtifact
from repro.sim.config import CacheGeometry
from repro.sim.depgraph import critical_path_per_iteration
from repro.sim.events import (
    simulate_branches,
    simulate_icache,
    simulate_memory,
)
from repro.sim.interval import MissProfile, compute_cycles
from repro.sim.trace import expand

KNOBS = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1,
             LD=3, LW=1, SD=1, SW=1,
             REG_DIST=4, MEM_SIZE=512, MEM_STRIDE=64,
             MEM_TEMP1=2, MEM_TEMP2=1, B_PATTERN=0.3)

#: Exact statistics recorded from the pre-pipeline simulator (commit
#: ecb292a) for ``generate_test_case(KNOBS)`` at a 12k budget.  Bitwise
#: equality here proves the staged pipeline changed nothing numerically.
#:
#: One deliberate update: the large core's ``prefetch_hits`` was 4536
#: when recorded, every one of which came from the warmup-leakage bug —
#: a line prefetched *and first used* during warmup stayed in the
#: prefetched set, so its next measured L2 hit was miscounted as a
#: prefetch hit.  With the fix (first use consumes the mark regardless
#: of the warmup boundary) this workload's prefetch first-uses all land
#: in its 47-iteration warmup, so the measured count is 0.  Cycles/IPC
#: are untouched: prefetch accounting never fed the timing model.
PRE_REFACTOR_GOLDEN = {
    "small": {
        "cycles": 229363.42857142858,
        "ipc": 0.0523187156502718,
        "mispredict_rate": 0.34341397849462363,
        "dtlb_miss_rate": 0.015652557319223985,
        "load_l2_misses": 3000,
        "prefetch_hits": 0,
        "iterations": 24,
        "warmup_iterations": 4,
    },
    "large": {
        "cycles": 23699.14285714286,
        "ipc": 0.5063474266700423,
        "mispredict_rate": 0.3165322580645161,
        "dtlb_miss_rate": 0.0,
        "load_l2_misses": 0,
        "prefetch_hits": 0,
        "iterations": 24,
        "warmup_iterations": 47,
    },
}


@pytest.fixture(scope="module")
def program():
    return generate_test_case(KNOBS)


def straightline_reference(core, program, instructions, warmup_fraction=0.2):
    """The pre-pipeline ``Simulator.run`` data path, stage by stage,
    with no artifact, no memoization and no batching — pinned to the
    ``reference`` event engine so it stays the oracle for the default
    (vectorized) engine."""
    program.validate()
    loop = len(program)
    artifact = TraceArtifact.build(program, instructions)
    warmup_iters, measure_iters = artifact.schedule(core, warmup_fraction)
    iterations = warmup_iters + measure_iters

    trace = expand(program, iterations, line_bytes=core.l1d.line_bytes)
    mem = simulate_memory(
        core, trace, warmup_iters * len(program.memory_instructions()),
        engine="reference",
    )
    mispredicts, lookups = simulate_branches(
        core, trace, warmup_iters * len(program.branch_instructions()),
        engine="reference",
    )
    code_bytes = program.metadata.get("code_bytes", loop * 4)
    i_hits, i_misses, i_l2 = simulate_icache(core, code_bytes, measure_iters)

    total = loop * measure_iters
    class_counts = {
        c: n * measure_iters for c, n in program.class_counts().items()
    }
    cycles = compute_cycles(
        core,
        total,
        class_counts,
        critical_path_per_iteration(program, core),
        loop,
        MissProfile(
            branch_mispredicts=mispredicts,
            icache_l1_misses=i_misses,
            icache_l2_misses=i_l2,
            load_l1_misses=mem.load_l1_misses,
            load_l2_misses=mem.load_l2_misses,
            store_l1_misses=mem.store_l1_misses,
            store_l2_misses=mem.store_l2_misses,
            dtlb_misses=mem.dtlb_misses,
        ),
        dependency_distance=float(
            program.metadata.get("dependency_distance", 4)
        ),
        parallel_streams=max(
            1, len(program.metadata.get("memory_streams") or [])
        ),
    ).cycles
    return {
        "cycles": cycles,
        "ipc": total / cycles,
        "mispredicts": mispredicts,
        "lookups": lookups,
        "load_l2_misses": mem.load_l2_misses,
        "dtlb_misses": mem.dtlb_misses,
    }


def _sweep_cores():
    """A batch mixing back-end-only variants with distinct hierarchies
    and a different predictor/TLB sizing (the small core)."""
    return [
        LARGE_CORE,
        replace(LARGE_CORE, rob=80, lsq=32),
        replace(LARGE_CORE, front_end_width=4, alu_units=3),
        replace(LARGE_CORE, mispredict_penalty=20, memory_latency=240),
        replace(LARGE_CORE, l1d=CacheGeometry(16 * 1024, 4, latency=4)),
        replace(LARGE_CORE, l2=CacheGeometry(256 * 1024, 8, latency=12)),
        SMALL_CORE,
        replace(SMALL_CORE, mem_ports=1),
    ]


class TestGoldenDeterminism:
    @pytest.mark.parametrize("core_name", ["small", "large"])
    def test_bit_identical_to_pre_refactor(self, program, core_name):
        core = SMALL_CORE if core_name == "small" else LARGE_CORE
        stats = Simulator(core).run(program, instructions=12_000)
        golden = PRE_REFACTOR_GOLDEN[core_name]
        assert stats.cycles == golden["cycles"]
        assert stats.ipc == golden["ipc"]
        assert stats.mispredict_rate == golden["mispredict_rate"]
        assert stats.dtlb_miss_rate == golden["dtlb_miss_rate"]
        assert stats.extra["load_l2_misses"] == golden["load_l2_misses"]
        assert stats.extra["prefetch_hits"] == golden["prefetch_hits"]
        assert stats.extra["iterations"] == golden["iterations"]
        assert (
            stats.extra["warmup_iterations"] == golden["warmup_iterations"]
        )

    @pytest.mark.parametrize("core", _sweep_cores()[:4] + [SMALL_CORE])
    def test_run_matches_straightline_reference(self, program, core):
        stats = Simulator(core).run(program, instructions=10_000)
        ref = straightline_reference(core, program, 10_000)
        assert stats.cycles == ref["cycles"]
        assert stats.ipc == ref["ipc"]
        assert stats.extra["branch_lookups"] == ref["lookups"]
        assert stats.extra["load_l2_misses"] == ref["load_l2_misses"]

    def test_run_many_equals_independent_runs(self, program):
        cores = _sweep_cores()
        batched = Simulator.run_many(
            cores,
            program,
            instructions=10_000,
            artifact_cache=TraceArtifactCache(maxsize=2),
        )
        independent = [
            Simulator(core).run(program, instructions=10_000)
            for core in cores
        ]
        assert batched == independent  # full SimStats equality

    def test_run_many_preserves_input_order(self, program):
        cores = [SMALL_CORE, LARGE_CORE]
        stats = Simulator.run_many(cores, program, instructions=6_000)
        assert [s.core for s in stats] == ["small", "large"]


class TestArtifactSharing:
    def test_fingerprint_is_content_addressed(self, program):
        assert program_fingerprint(program) == program_fingerprint(program)
        other = generate_test_case(dict(KNOBS, ADD=6))
        assert program_fingerprint(program) != program_fingerprint(other)

    def test_cache_hits_for_same_program_and_budget(self, program):
        cache = TraceArtifactCache(maxsize=4)
        first = cache.get_or_build(program, 8_000)
        second = cache.get_or_build(program, 8_000)
        assert first is second
        assert (cache.hits, cache.misses) == (1, 1)

    def test_cache_distinguishes_budgets(self, program):
        cache = TraceArtifactCache(maxsize=4)
        assert cache.get_or_build(program, 8_000) is not cache.get_or_build(
            program, 16_000
        )

    def test_cache_is_lru_bounded(self, program):
        cache = TraceArtifactCache(maxsize=2)
        for budget in (4_000, 8_000, 16_000):
            cache.get_or_build(program, budget)
        assert len(cache) == 2
        # 4k was evicted; 8k and 16k still hit.
        cache.get_or_build(program, 8_000)
        cache.get_or_build(program, 16_000)
        assert cache.hits == 2
        cache.get_or_build(program, 4_000)
        assert cache.misses == 4

    def test_backend_only_variants_share_event_simulations(self, program):
        artifact = TraceArtifact.build(program, 8_000)
        wide = replace(LARGE_CORE, front_end_width=4, rob=320)
        Simulator.run_many([LARGE_CORE, wide], program,
                           instructions=8_000, artifact=artifact)
        # One memory sim, one branch sim, one trace: the variants differ
        # only in parameters the event simulations never read.
        assert len(artifact._memory) == 1
        assert len(artifact._branches) == 1
        assert len(artifact._traces) == 1

    def test_distinct_hierarchies_do_not_alias(self, program):
        artifact = TraceArtifact.build(program, 8_000)
        small_l1 = replace(LARGE_CORE, l1d=CacheGeometry(8 * 1024, 4,
                                                         latency=3))
        Simulator.run_many([LARGE_CORE, small_l1], program,
                           instructions=8_000, artifact=artifact)
        assert len(artifact._memory) == 2

    def test_mismatched_artifact_budget_rejected(self, program):
        artifact = TraceArtifact.build(program, 8_000)
        with pytest.raises(ValueError, match="budget"):
            Simulator(SMALL_CORE).run(
                program, instructions=16_000, artifact=artifact
            )

    def test_mismatched_artifact_program_rejected(self, program):
        artifact = TraceArtifact.build(program, 8_000)
        other = generate_test_case(dict(KNOBS, ADD=7))
        with pytest.raises(ValueError, match="different program"):
            Simulator(SMALL_CORE).run(
                other, instructions=8_000, artifact=artifact
            )

    def test_equal_content_program_copy_is_accepted(self, program):
        artifact = TraceArtifact.build(program, 8_000)
        copy = generate_test_case(KNOBS)
        stats = Simulator(SMALL_CORE).run(
            copy, instructions=8_000, artifact=artifact
        )
        assert stats == Simulator(SMALL_CORE).run(copy, instructions=8_000)

    def test_cache_is_thread_safe_under_churn(self, program):
        # ThreadBackend workers share simulators and hence caches; LRU
        # bookkeeping must survive concurrent hit/evict churn.
        from concurrent.futures import ThreadPoolExecutor

        cache = TraceArtifactCache(maxsize=2)
        budgets = [4_000, 6_000, 8_000, 10_000]

        def hammer(i):
            for budget in budgets:
                cache.get_or_build(program, budget)
            return i

        with ThreadPoolExecutor(max_workers=8) as pool:
            assert sorted(pool.map(hammer, range(16))) == list(range(16))
        assert len(cache) <= 2


class TestPickleStability:
    def test_pickled_state_is_core_only(self):
        sim = Simulator(SMALL_CORE)
        assert sim.__getstate__() == {"core": SMALL_CORE}

    def test_roundtrip_rebuilds_working_simulator(self, program):
        sim = pickle.loads(pickle.dumps(Simulator(SMALL_CORE)))
        stats = sim.run(program, instructions=6_000)
        assert stats.core == "small"

    def test_platform_identity_survives_the_refactor(self):
        # Disk-cache contexts hash the pickled platform; this digest was
        # recorded before the pipeline refactor and must never drift, or
        # every persistent cache entry silently misses.
        import hashlib

        from repro.core.platform import PerformancePlatform

        platform = PerformancePlatform(SMALL_CORE, instructions=8_000)
        digest = hashlib.sha256(pickle.dumps(platform)).hexdigest()[:16]
        assert digest == "933ca47ebf2dad61"
