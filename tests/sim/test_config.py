"""Unit tests for the Table II core configurations."""

import pytest

from repro.sim.config import (
    CacheGeometry,
    LARGE_CORE,
    SMALL_CORE,
    core_by_name,
    custom_core,
)


class TestTableII:
    """The Small/Large cores must match Table II of the paper."""

    def test_frequency_is_2ghz(self):
        assert SMALL_CORE.frequency_ghz == 2.0
        assert LARGE_CORE.frequency_ghz == 2.0

    def test_front_end_widths(self):
        assert SMALL_CORE.front_end_width == 3
        assert LARGE_CORE.front_end_width == 8

    def test_window_structures(self):
        assert (SMALL_CORE.rob, SMALL_CORE.lsq, SMALL_CORE.rse) == (40, 16, 32)
        assert (LARGE_CORE.rob, LARGE_CORE.lsq, LARGE_CORE.rse) == (160, 64, 128)

    def test_unit_counts(self):
        assert (SMALL_CORE.alu_units, SMALL_CORE.simd_units,
                SMALL_CORE.fp_units) == (3, 2, 2)
        assert (LARGE_CORE.alu_units, LARGE_CORE.simd_units,
                LARGE_CORE.fp_units) == (6, 4, 4)

    def test_cache_sizes(self):
        assert SMALL_CORE.l1i.size_bytes == 16 * 1024
        assert SMALL_CORE.l2.size_bytes == 256 * 1024
        assert LARGE_CORE.l1i.size_bytes == 32 * 1024
        assert LARGE_CORE.l2.size_bytes == 1024 * 1024

    def test_only_large_core_prefetches(self):
        assert not SMALL_CORE.l2_prefetcher
        assert LARGE_CORE.l2_prefetcher

    def test_memory_1gb(self):
        assert SMALL_CORE.memory_gb == 1
        assert LARGE_CORE.memory_gb == 1

    def test_describe_mentions_prefetch_only_on_large(self):
        assert "prefetch" not in SMALL_CORE.describe()["l2"]
        assert "prefetch" in LARGE_CORE.describe()["l2"]


class TestLookupAndCustomization:
    def test_core_by_name(self):
        assert core_by_name("small") is SMALL_CORE
        assert core_by_name(" LARGE ") is LARGE_CORE

    def test_unknown_core_raises(self):
        with pytest.raises(KeyError):
            core_by_name("medium")

    def test_custom_core_overrides(self):
        wide = custom_core(SMALL_CORE, front_end_width=6, name="custom")
        assert wide.front_end_width == 6
        assert wide.rob == SMALL_CORE.rob
        assert SMALL_CORE.front_end_width == 3  # original untouched


class TestCacheGeometry:
    def test_num_sets(self):
        geom = CacheGeometry(16 * 1024, 4, 64)
        assert geom.num_sets == 64

    def test_degenerate_geometry_raises(self):
        with pytest.raises(ValueError):
            CacheGeometry(64, 4, 64).num_sets
