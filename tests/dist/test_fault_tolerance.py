"""Chaos test: a worker dies mid-batch; the run must not notice.

One of the two spawned workers executes a poisoned job that kills its
process outright (``os._exit``, no cleanup — as close to an OOM kill as
a test can get).  The coordinator must detect the dead connection,
reschedule the leased job onto the surviving worker, and deliver final
:class:`~repro.sim.stats.SimStats` bit-identical to a serial run.

The kill is deterministic: the poisoned job touches a sentinel file
before dying, and only dies if the sentinel does not exist yet — so
exactly one worker dies, and the rescheduled attempt succeeds.
"""

import os
from pathlib import Path

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.dist.backend import DistributedBackend
from repro.sim.config import core_by_name
from repro.sim.simulator import Simulator


def _simulate(config: dict):
    """One deterministic evaluation returning the full SimStats."""
    program = generate_test_case(config, GenerationOptions(loop_size=80))
    return Simulator(core_by_name("small")).run(program, instructions=2_000)


def _simulate_or_die(item):
    """Die hard on the poisoned item — but only the first time ever."""
    sentinel, config, poisoned = item
    if poisoned and not os.path.exists(sentinel):
        Path(sentinel).touch()
        os._exit(1)  # crash the worker process mid-batch, no goodbyes
    return _simulate(config)


def _die_always(_item):
    os._exit(1)


CONFIGS = [
    {"ADD": n % 4 + 1, "LD": n % 3, "BEQ": n % 2, "REG_DIST": 2 + n % 3}
    for n in range(8)
]
POISONED_INDEX = 3


class TestWorkerDeathMidBatch:
    def test_leased_jobs_reschedule_and_stats_stay_bit_identical(
        self, tmp_path
    ):
        sentinel = str(tmp_path / "died-once")
        items = [
            (sentinel, config, index == POISONED_INDEX)
            for index, config in enumerate(CONFIGS)
        ]
        serial_stats = [_simulate(config) for config in CONFIGS]

        with DistributedBackend(spawn_workers=2) as backend:
            dist_stats = backend.map(_simulate_or_die, items)
            coordinator = backend.coordinator
            assert coordinator is not None
            reschedules = coordinator.reschedules

        assert os.path.exists(sentinel), "the poisoned job never ran"
        assert reschedules >= 1, "worker death did not trigger a reschedule"
        assert dist_stats == serial_stats  # bit-identical, SimStats and all

    def test_poison_job_that_kills_every_worker_surfaces_as_error(self):
        # A job that kills *every* worker it touches must not cycle
        # forever: after max_attempts dead workers it becomes an error.
        # The elastic pool keeps respawning workers, which is exactly
        # why the attempts cap (not an empty cluster) must end it.
        import pytest

        with DistributedBackend(spawn_workers=2) as backend:
            coordinator = backend._ensure_started()
            assert coordinator is not None
            coordinator.max_attempts = 2
            with pytest.raises(RuntimeError, match="lost 2 workers"):
                backend.map(_die_always, [0])


class TestElasticPool:
    def test_dead_local_worker_is_respawned_and_run_completes(self, tmp_path):
        # One local worker, and the first job kills it.  Without the
        # elastic pool the cluster would stay empty forever and the run
        # would die on the worker_grace timer; the respawned worker
        # must pick the rescheduled job up and finish the batch.
        sentinel = str(tmp_path / "died-once")
        items = [
            (sentinel, config, index == 0)
            for index, config in enumerate(CONFIGS[:3])
        ]
        serial_stats = [_simulate(config) for config in CONFIGS[:3]]
        with DistributedBackend(spawn_workers=1, worker_grace=30.0) as backend:
            dist_stats = backend.map(_simulate_or_die, items)
            assert backend.pool is not None
            respawns = backend.pool.respawns
            reschedules = backend.coordinator.reschedules
        assert os.path.exists(sentinel), "the poisoned job never ran"
        assert respawns >= 1, "the dead worker was never respawned"
        assert reschedules >= 1
        assert dist_stats == serial_stats

    def test_respawn_budget_zero_disables_respawning(self, tmp_path):
        import pytest

        sentinel = str(tmp_path / "died-once")
        backend = DistributedBackend(spawn_workers=1, respawn_budget=0,
                                     worker_grace=1.0)
        try:
            with pytest.raises(RuntimeError, match="worker"):
                backend.map(_simulate_or_die,
                            [(sentinel, CONFIGS[0], True)])
            assert backend.pool.respawns == 0
        finally:
            backend.close()
