"""Liveness-layer tests: heartbeats, lease deadlines, blocking requests.

The headline chaos scenario: a worker *hangs* mid-job — its TCP
connection stays open (so EOF detection, the only detector PR 3 had,
never fires) but it stops heartbeating and never returns its result.
The coordinator must expire the lease within ``lease_timeout_s``,
reschedule the job onto a live worker, and finish the run with
:class:`~repro.sim.stats.SimStats` bit-identical to serial execution.
On the old EOF-only path this run hangs forever (pytest's timeout is
what would fail it).

The hang is simulated with :class:`_FakeWorker` — a raw protocol client
the test fully controls — rather than by poking a real worker's
internals: it says hello, takes a job, and then simply goes silent while
holding its socket open, exactly like a worker stuck in a syscall.
"""

import threading
import time

import pytest

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.dist.coordinator import Coordinator
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    ReceiveTimeout,
    connect,
    dumps_payload,
    loads_payload,
    recv_msg,
    send_msg,
)
from repro.dist.worker import run_worker
from repro.sim.config import core_by_name
from repro.sim.simulator import Simulator


def _square(x):
    return x * x


def _simulate(config: dict):
    """One deterministic evaluation returning the full SimStats."""
    program = generate_test_case(config, GenerationOptions(loop_size=80))
    return Simulator(core_by_name("small")).run(program, instructions=2_000)


CONFIGS = [
    {"ADD": n % 4 + 1, "LD": n % 3, "BEQ": n % 2, "REG_DIST": 2 + n % 3}
    for n in range(6)
]


class _FakeWorker:
    """A raw protocol client standing in for a worker under test control."""

    def __init__(self, addr: str, proto: int = PROTOCOL_VERSION,
                 name: str = "fake", heartbeat_s: float | None = None):
        self.sock = connect(addr)
        hello = {"type": "hello", "worker": name}
        if proto >= 2:
            hello["proto"] = proto
        if heartbeat_s is not None:
            hello["heartbeat"] = heartbeat_s
        send_msg(self.sock, hello)

    def request(self) -> None:
        send_msg(self.sock, {"type": "request"})

    def take_job(self, timeout: float = 10.0) -> tuple[int, bytes]:
        self.request()
        header, payload = self.recv(timeout=timeout)
        assert header["type"] == "job", f"expected a job, got {header!r}"
        return int(header["job"]), payload

    def recv(self, timeout: float | None = None):
        return recv_msg(self.sock, timeout=timeout)

    def send_result(self, job_id: int, value) -> None:
        send_msg(self.sock, {"type": "result", "job": job_id},
                 dumps_payload(value))

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class TestHungWorkerChaos:
    def test_hung_worker_lease_expires_and_stats_stay_bit_identical(self):
        serial_stats = [_simulate(config) for config in CONFIGS]
        # Heartbeat eviction deliberately out of reach (30s): this test
        # must prove the *lease deadline* path recovers on its own.
        coordinator = Coordinator(lease_timeout_s=1.0,
                                  heartbeat_timeout_s=30.0)
        addr = coordinator.start()
        hung = None
        worker = None
        try:
            job_ids = [coordinator.submit(dumps_payload((_simulate, c)))
                       for c in CONFIGS]
            # The hung worker grabs the first job, then goes silent with
            # its socket wide open — no EOF will ever arrive.
            hung = _FakeWorker(addr, name="hung")
            hung_job, _ = hung.take_job()
            assert hung_job == job_ids[0]
            worker = threading.Thread(
                target=run_worker, args=(addr,),
                kwargs={"name": "live", "heartbeat_s": 0.2}, daemon=True,
            )
            worker.start()
            outcomes = coordinator.wait(job_ids, timeout=90)
            assert all(status == "ok" for status, _ in outcomes)
            stats = [loads_payload(value) for _, value in outcomes]
            assert stats == serial_stats  # bit-identical, SimStats and all
            assert coordinator.lease_expiries >= 1
            assert coordinator.reschedules >= 1
            # EOF/eviction never fired — the lease deadline did the work.
            assert coordinator.evictions == 0
        finally:
            if hung is not None:
                hung.close()
            coordinator.shutdown()
            if worker is not None:
                worker.join(timeout=5)

    def test_silent_connection_is_evicted(self):
        # The complementary detector: heartbeat silence closes the
        # connection, which requeues its leases via the reap path.
        coordinator = Coordinator(lease_timeout_s=None,
                                  heartbeat_timeout_s=0.5)
        addr = coordinator.start()
        hung = None
        worker = None
        try:
            job_id = coordinator.submit(dumps_payload((_square, 7)))
            hung = _FakeWorker(addr, name="silent")
            taken, _ = hung.take_job()
            assert taken == job_id
            worker = threading.Thread(
                target=run_worker, args=(addr,),
                kwargs={"name": "live", "heartbeat_s": 0.1}, daemon=True,
            )
            worker.start()
            (status, value), = coordinator.wait([job_id], timeout=30)
            assert status == "ok"
            assert loads_payload(value) == 49
            assert coordinator.evictions >= 1
            # The coordinator hung up on the silent connection.
            with pytest.raises((ConnectionError, OSError)):
                hung.recv(timeout=10)
        finally:
            if hung is not None:
                hung.close()
            coordinator.shutdown()
            if worker is not None:
                worker.join(timeout=5)

    def test_advertised_slow_heartbeat_raises_the_eviction_bar(self):
        # A worker that declares a slow --heartbeat in its hello must be
        # judged against ~3 of its own intervals, not the global floor.
        coordinator = Coordinator(lease_timeout_s=None,
                                  heartbeat_timeout_s=0.4)
        addr = coordinator.start()
        slow = None
        try:
            slow = _FakeWorker(addr, name="slow-beat", heartbeat_s=1.0)
            time.sleep(1.0)  # silent for >2x the global floor
            assert coordinator.worker_count() == 1
            assert coordinator.evictions == 0
            # ...but ~3 missed advertised beats still gets it evicted.
            deadline = time.monotonic() + 10
            while coordinator.worker_count() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert coordinator.worker_count() == 0
            assert coordinator.evictions == 1
        finally:
            if slow is not None:
                slow.close()
            coordinator.shutdown()


class TestBlockingRequests:
    def test_v2_request_blocks_until_work_is_submitted(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        fake = None
        try:
            fake = _FakeWorker(addr)
            fake.request()
            # No busy-poll "idle" reply: the request parks until work
            # arrives (heartbeat pings would keep the link alive).
            with pytest.raises(ReceiveTimeout):
                fake.recv(timeout=0.4)
            job_id = coordinator.submit(dumps_payload((_square, 3)))
            header, payload = fake.recv(timeout=10)
            assert header["type"] == "job" and header["job"] == job_id
            fake.send_result(job_id, 9)
            (status, value), = coordinator.wait([job_id], timeout=10)
            assert (status, loads_payload(value)) == ("ok", 9)
        finally:
            if fake is not None:
                fake.close()
            coordinator.shutdown()

    def test_v1_worker_still_gets_an_idle_reply(self):
        # Backward compatibility: a version-1 worker polls and expects
        # an immediate answer when the queue is empty.
        coordinator = Coordinator()
        addr = coordinator.start()
        fake = None
        try:
            fake = _FakeWorker(addr, proto=1)
            fake.request()
            header, _ = fake.recv(timeout=10)
            assert header["type"] == "idle"
        finally:
            if fake is not None:
                fake.close()
            coordinator.shutdown()

    def test_ping_gets_pong(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        fake = None
        try:
            fake = _FakeWorker(addr)
            send_msg(fake.sock, {"type": "ping"})
            header, _ = fake.recv(timeout=10)
            assert header["type"] == "pong"
        finally:
            if fake is not None:
                fake.close()
            coordinator.shutdown()


class TestWaitAccounting:
    def test_wait_timeout_zero_times_out_immediately(self):
        # Regression: ``timeout=0`` used to be treated as "no timeout"
        # (falsy), turning a poll into an indefinite block.
        coordinator = Coordinator()
        coordinator.start()
        try:
            job_id = coordinator.submit(dumps_payload((_square, 2)))
            start = time.monotonic()
            with pytest.raises(TimeoutError):
                coordinator.wait([job_id], timeout=0)
            assert time.monotonic() - start < 2.0
        finally:
            coordinator.shutdown()

    def test_wait_timeout_zero_returns_resolved_results(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        fake = None
        try:
            job_id = coordinator.submit(dumps_payload((_square, 4)))
            fake = _FakeWorker(addr)
            taken, _ = fake.take_job()
            fake.send_result(taken, 16)
            deadline = time.monotonic() + 10
            while True:  # poll until the serve thread lands the result
                try:
                    (status, value), = coordinator.wait([job_id], timeout=0)
                    break
                except TimeoutError:
                    assert time.monotonic() < deadline
                    time.sleep(0.01)
            assert (status, loads_payload(value)) == ("ok", 16)
        finally:
            if fake is not None:
                fake.close()
            coordinator.shutdown()

    def test_late_result_for_forgotten_job_is_dropped(self):
        # An abandoned batch's job id must not re-enter the result store
        # (it would leak forever: no caller is left to forget it again).
        coordinator = Coordinator()
        addr = coordinator.start()
        fake = None
        try:
            fake = _FakeWorker(addr)
            stale = coordinator.submit(dumps_payload((_square, 5)))
            taken, _ = fake.take_job()
            assert taken == stale
            coordinator.forget([stale])
            fake.send_result(stale, 25)  # too late: already abandoned
            # A follow-up job proves the stale frame was processed first
            # (frames on one connection are handled in order).
            live = coordinator.submit(dumps_payload((_square, 6)))
            taken, _ = fake.take_job()
            fake.send_result(taken, 36)
            (status, value), = coordinator.wait([live], timeout=10)
            assert (status, loads_payload(value)) == ("ok", 36)
            assert stale not in coordinator._results
            assert coordinator.jobs_completed == 1  # the live job only
        finally:
            if fake is not None:
                fake.close()
            coordinator.shutdown()

    def test_duplicate_resolution_counts_and_stores_once(self):
        # A lease expires, the job reruns elsewhere, and then *both*
        # workers finish: first resolution wins, no double counting.
        coordinator = Coordinator(lease_timeout_s=0.3,
                                  heartbeat_timeout_s=None)
        addr = coordinator.start()
        slow = fast = None
        try:
            job_id = coordinator.submit(dumps_payload((_square, 9)))
            slow = _FakeWorker(addr, name="slow")
            taken, _ = slow.take_job()
            assert taken == job_id
            # Let the lease expire and hand the rerun to a second worker.
            fast = _FakeWorker(addr, name="fast")
            rerun, _ = fast.take_job(timeout=10)
            assert rerun == job_id
            fast.send_result(job_id, 81)
            (status, value), = coordinator.wait([job_id], timeout=10)
            assert (status, loads_payload(value)) == ("ok", 81)
            assert coordinator.jobs_completed == 1
            slow.send_result(job_id, 81)  # the original, finally done
            # Flush: a second job round-trip on the slow connection
            # proves the duplicate result frame has been processed.
            flush = coordinator.submit(dumps_payload((_square, 3)))
            taken, _ = slow.take_job(timeout=10)
            assert taken == flush
            slow.send_result(flush, 9)
            coordinator.wait([flush], timeout=10)
            assert coordinator.jobs_completed == 2  # not 3
            assert coordinator.lease_expiries == 1
        finally:
            for worker in (slow, fast):
                if worker is not None:
                    worker.close()
            coordinator.shutdown()


class TestStreamingWaits:
    def test_as_completed_yields_in_landing_order(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        fake = None
        try:
            ids = [coordinator.submit(dumps_payload((_square, n)))
                   for n in range(3)]
            fake = _FakeWorker(addr)
            # Finish them out of submission order: 2, 0, 1.
            held = {}
            for _ in ids:
                job_id, _ = fake.take_job()
                held[job_id] = job_id
            for job_id in (ids[2], ids[0], ids[1]):
                fake.send_result(job_id, job_id * 100)
                landed, (status, value) = coordinator.wait_next(
                    [job_id], timeout=10
                )
                assert landed == job_id
            order = [job_id for job_id, _ in
                     coordinator.as_completed(ids, timeout=10)]
            assert sorted(order) == sorted(ids)  # all there, yielded once
        finally:
            if fake is not None:
                fake.close()
            coordinator.shutdown()

    def test_wait_next_empty_ids_rejected(self):
        coordinator = Coordinator()
        coordinator.start()
        try:
            with pytest.raises(ValueError):
                coordinator.wait_next([])
        finally:
            coordinator.shutdown()
