"""Regression tests for deterministic connection iteration.

``Coordinator._connections`` is a set; before connections carried an
accept-order ``seq``, dispatch and lease-expiry order depended on the
hash seed — harmless for correctness, but it made scheduling decisions
(hence cache warm-up order, log order, reschedule targets) vary between
runs.  These tests pin the fixed behavior: iteration follows ``seq``,
never set order.
"""

import socket

from repro.dist.coordinator import Coordinator, _Connection
from repro.dist.protocol import FRAME_TYPES, MSG_JOB, PROTOCOL_VERSION


def _fake_connection(seq: int) -> _Connection:
    # A real (unconnected) socket object so the dataclass stays honest;
    # nothing is ever sent through it in these tests.
    conn = _Connection(sock=socket.socket(), peer=f"peer-{seq}")
    conn.seq = seq
    conn.proto = 2
    conn.hungry = True
    return conn


class TestDispatchOrder:
    def test_jobs_go_to_hungry_connections_in_accept_order(self):
        coordinator = Coordinator()
        # Insert in scrambled order: a set will iterate these however
        # the hash seed likes; dispatch must still follow seq.
        conns = {seq: _fake_connection(seq) for seq in (3, 0, 2, 1)}
        with coordinator._cv:
            coordinator._connections.update(conns.values())
            for _ in range(4):
                job_id = coordinator._next_id
                coordinator._next_id += 1
                from repro.dist.coordinator import _Job
                coordinator._jobs[job_id] = _Job(id=job_id, payload=b"")
                coordinator._sessions[0].queue.append(job_id)
            sends = coordinator._dispatch_locked()
        assert [conn.seq for conn, _header, _payload in sends] == [0, 1, 2, 3]
        assert all(header["type"] == MSG_JOB for _c, header, _p in sends)
        for conn in conns.values():
            conn.sock.close()

    def test_observers_never_receive_jobs(self):
        coordinator = Coordinator()
        worker = _fake_connection(1)
        observer = _fake_connection(0)
        observer.role = "observer"
        with coordinator._cv:
            coordinator._connections.update({worker, observer})
            from repro.dist.coordinator import _Job
            coordinator._jobs[0] = _Job(id=0, payload=b"")
            coordinator._sessions[0].queue.append(0)
            coordinator._next_id = 1
            sends = coordinator._dispatch_locked()
        assert [conn.seq for conn, _h, _p in sends] == [1]
        worker.sock.close()
        observer.sock.close()

    def test_accept_seq_increments_monotonically(self):
        coordinator = Coordinator()
        try:
            coordinator.start()
            socks = []
            for _ in range(3):
                sock = socket.create_connection(
                    ("127.0.0.1", coordinator.port), timeout=5.0)
                socks.append(sock)
            deadline_misses = 0
            import time
            while deadline_misses < 100:
                with coordinator._cv:
                    seqs = sorted(c.seq for c in coordinator._connections)
                if len(seqs) == 3:
                    break
                deadline_misses += 1
                time.sleep(0.02)
            assert seqs == [0, 1, 2]
            for sock in socks:
                sock.close()
        finally:
            coordinator.shutdown()


class TestFrameTypeRegistry:
    def test_every_msg_constant_is_declared(self):
        from repro.dist import protocol

        msg_values = {
            getattr(protocol, name) for name in dir(protocol)
            if name.startswith("MSG_")
        }
        assert msg_values == set(FRAME_TYPES)
        assert PROTOCOL_VERSION >= 2

    def test_unknown_frame_type_is_silently_ignored(self):
        """Additive protocol: a newer peer's frame must not kill serve."""
        import pickle
        import time

        from repro.dist.protocol import recv_msg, send_msg

        coordinator = Coordinator()
        try:
            coordinator.start()
            sock = socket.create_connection(
                ("127.0.0.1", coordinator.port), timeout=5.0)
            send_msg(sock, {"type": "hello", "proto": 2, "name": "t"})
            send_msg(sock, {"type": "frame-from-the-future", "x": 1})
            time.sleep(0.1)
            # The connection survived the unknown frame: a known
            # request/response still round-trips on the same socket.
            job = coordinator.submit(pickle.dumps((None, None)))
            send_msg(sock, {"type": "request"})
            header, payload = recv_msg(sock)
            assert header["type"] == "job"
            assert header["job"] == job
            sock.close()
        finally:
            coordinator.shutdown()
