"""Wire-protocol unit tests: framing, payloads, malformed peers."""

import socket
import threading

import pytest

from repro.dist.protocol import (
    ProtocolError,
    dumps_payload,
    format_addr,
    loads_payload,
    parse_addr,
    recv_msg,
    send_msg,
)


def _pair():
    return socket.socketpair()


class TestFraming:
    def test_header_only_roundtrip(self):
        a, b = _pair()
        try:
            send_msg(a, {"type": "request"})
            header, payload = recv_msg(b)
            assert header == {"type": "request"}
            assert payload is None
        finally:
            a.close()
            b.close()

    def test_header_and_payload_roundtrip(self):
        a, b = _pair()
        try:
            body = dumps_payload({"metrics": [1.5, 2.5], "n": 3})
            send_msg(a, {"type": "result", "job": 17}, body)
            header, payload = recv_msg(b)
            assert header == {"type": "result", "job": 17}
            assert loads_payload(payload) == {"metrics": [1.5, 2.5], "n": 3}
        finally:
            a.close()
            b.close()

    def test_frames_are_self_delimiting(self):
        # Several frames written back to back come out one at a time.
        a, b = _pair()
        try:
            for n in range(5):
                send_msg(a, {"type": "job", "job": n}, dumps_payload(n * n))
            for n in range(5):
                header, payload = recv_msg(b)
                assert header["job"] == n
                assert loads_payload(payload) == n * n
        finally:
            a.close()
            b.close()

    def test_large_payload(self):
        a, b = _pair()
        received = {}

        def reader():
            header, payload = recv_msg(b)
            received["data"] = loads_payload(payload)

        thread = threading.Thread(target=reader)
        thread.start()
        try:
            blob = list(range(200_000))
            send_msg(a, {"type": "result", "job": 0}, dumps_payload(blob))
            thread.join(timeout=10)
            assert received["data"] == blob
        finally:
            a.close()
            b.close()

    def test_eof_mid_frame_raises_connection_error(self):
        a, b = _pair()
        a.sendall(b"\x00\x00\x00\x10")  # half a frame prefix, then EOF
        a.close()
        try:
            with pytest.raises(ConnectionError):
                recv_msg(b)
        finally:
            b.close()

    def test_garbage_header_raises_protocol_error(self):
        a, b = _pair()
        try:
            import struct

            junk = b"\xff\xfe not json"
            a.sendall(struct.pack("!II", len(junk), 0) + junk)
            with pytest.raises(ProtocolError):
                recv_msg(b)
        finally:
            a.close()
            b.close()

    def test_typeless_header_rejected(self):
        a, b = _pair()
        try:
            send_msg(a, {"job": 1})
            with pytest.raises(ProtocolError):
                recv_msg(b)
        finally:
            a.close()
            b.close()


class TestAddresses:
    def test_roundtrip(self):
        assert parse_addr(format_addr("10.0.0.7", 9900)) == ("10.0.0.7", 9900)

    def test_port_only_defaults_to_loopback(self):
        assert parse_addr(":8000") == ("127.0.0.1", 8000)

    @pytest.mark.parametrize("bad", ["nope", "host:", "host:abc", ""])
    def test_malformed_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_addr(bad)
