"""Regression tests for WorkerPool spawn/respawn accounting.

``_spawn_locked`` mutates ``_spawned`` (worker naming) and the monitor
thread mutates ``respawns`` — both declared in ``WorkerPool.GUARDED_BY``
and only touched under ``_lock``.  These tests drive the pool with a
stubbed ``multiprocessing.Process`` so the accounting is exact: no real
processes, no coordinator, no timing slack on spawn counts.
"""

import threading
import types

import pytest

from repro.dist import worker as worker_mod
from repro.dist.worker import WorkerPool


class FakeProcess:
    """Stands in for multiprocessing.Process; liveness is a switch."""

    spawned: list["FakeProcess"] = []

    def __init__(self, target=None, args=(), kwargs=None, daemon=None):
        self.target = target
        self.args = args
        self.kwargs = kwargs or {}
        self.daemon = daemon
        self.alive = False
        self.terminated = False
        FakeProcess.spawned.append(self)

    def start(self):
        self.alive = True

    def is_alive(self):
        return self.alive

    def join(self, timeout=None):
        pass

    def terminate(self):
        self.alive = False
        self.terminated = True


@pytest.fixture
def fake_processes(monkeypatch):
    FakeProcess.spawned = []
    monkeypatch.setattr(
        worker_mod, "multiprocessing",
        types.SimpleNamespace(Process=FakeProcess),
    )
    monkeypatch.setattr(WorkerPool, "MONITOR_TICK_S", 0.01)
    return FakeProcess


def _wait_until(predicate, timeout=5.0):
    done = threading.Event()
    import time
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        done.wait(0.01)
    return predicate()


class TestSpawnAccounting:
    def test_start_spawns_count_workers_with_sequential_names(
            self, fake_processes):
        pool = WorkerPool("127.0.0.1:0", count=3, respawn_budget=0)
        pool.start()
        try:
            assert len(fake_processes.spawned) == 3
            names = [p.kwargs["name"] for p in fake_processes.spawned]
            assert names == ["local-0", "local-1", "local-2"]
            assert pool.alive_count() == 3
            assert pool._spawned == 3
        finally:
            pool.stop()

    def test_start_is_idempotent(self, fake_processes):
        pool = WorkerPool("127.0.0.1:0", count=2, respawn_budget=0)
        pool.start()
        try:
            pool.start()
            assert len(fake_processes.spawned) == 2
        finally:
            pool.stop()


class TestRespawnAccounting:
    def test_dead_worker_is_respawned_and_counted(self, fake_processes):
        pool = WorkerPool("127.0.0.1:0", count=2, respawn_budget=4)
        pool.start()
        try:
            fake_processes.spawned[0].alive = False
            assert _wait_until(lambda: pool.alive_count() == 2)
            with pool._lock:
                assert pool.respawns == 1
                assert pool._spawned == 3
            # The replacement continues the name sequence.
            assert fake_processes.spawned[-1].kwargs["name"] == "local-2"
        finally:
            pool.stop()

    def test_respawn_budget_is_a_hard_cap(self, fake_processes):
        pool = WorkerPool("127.0.0.1:0", count=1, respawn_budget=1)
        pool.start()
        try:
            fake_processes.spawned[0].alive = False
            assert _wait_until(lambda: pool.respawns == 1)
            # Kill the replacement too: the budget is spent, so the
            # monitor must stop watching instead of burning spawns.
            fake_processes.spawned[-1].alive = False
            assert not _wait_until(
                lambda: len(fake_processes.spawned) > 2, timeout=0.2)
            with pool._lock:
                assert pool.respawns == 1
                assert pool._spawned == 2
        finally:
            pool.stop()

    def test_budget_zero_disables_respawning(self, fake_processes):
        pool = WorkerPool("127.0.0.1:0", count=1, respawn_budget=0)
        pool.start()
        try:
            fake_processes.spawned[0].alive = False
            assert not _wait_until(
                lambda: len(fake_processes.spawned) > 1, timeout=0.2)
            assert pool.respawns == 0
        finally:
            pool.stop()

    def test_stop_terminates_survivors(self, fake_processes):
        pool = WorkerPool("127.0.0.1:0", count=2, respawn_budget=0)
        pool.start()
        pool.stop()
        assert all(not p.alive for p in fake_processes.spawned)
