"""Multi-tenant coordinator tests: sessions, fairness, auth, GC, prefetch."""

import socket
import threading
import time

import pytest

from repro.codegen import generate_test_case
from repro.codegen.wrapper import GenerationOptions
from repro.dist.client import ClientSession
from repro.dist.coordinator import Coordinator, _Job, _Session
from repro.dist.protocol import dumps_payload, loads_payload
from repro.dist.worker import run_worker
from repro.sim.artifact import (
    TraceArtifact,
    active_artifact_store,
    detach_artifact_store,
)


def _square(x):
    return x * x


def _slow_square(x):
    time.sleep(0.01)
    return x * x


@pytest.fixture(autouse=True)
def _no_leaked_store():
    """Worker threads attach process-wide artifact stores; never leak."""
    detach_artifact_store()
    yield
    detach_artifact_store()


def _start_worker(addr, name="w", secret=None, stop=None, cache_dir=None):
    kwargs = {"name": name}
    if secret is not None:
        kwargs["secret"] = secret
    if stop is not None:
        kwargs["stop"] = stop
    if cache_dir is not None:
        kwargs["cache_dir"] = cache_dir
    worker = threading.Thread(target=run_worker, args=(addr,),
                              kwargs=kwargs, daemon=True)
    worker.start()
    return worker


def _collect(session, tags, timeout=30):
    """Drain a session's batch into tag-ordered plain values."""
    landed = {}
    for tag, (status, value) in session.as_completed(tags, timeout=timeout):
        assert status == "ok", value
        landed[tag] = loads_payload(value)
    return [landed[tag] for tag in tags]


def _seed_session(coordinator, sid, n_jobs, priority=1.0):
    """Install a fake client session with ``n_jobs`` queued (lock held)."""
    session = _Session(id=sid, name=f"s{sid}", priority=priority)
    coordinator._sessions[sid] = session
    for _ in range(n_jobs):
        job_id = coordinator._next_id
        coordinator._next_id += 1
        coordinator._jobs[job_id] = _Job(id=job_id, payload=b"",
                                         session=sid, tag=job_id)
        session.queue.append(job_id)
    return session


class TestStrideScheduler:
    def test_equal_priority_sessions_alternate(self):
        coordinator = Coordinator()
        with coordinator._cv:
            _seed_session(coordinator, 1, 4)
            _seed_session(coordinator, 2, 4)
            order = [coordinator._next_job_locked().session
                     for _ in range(8)]
        assert order == [1, 2, 1, 2, 1, 2, 1, 2]

    def test_priority_weights_dispatch_share(self):
        coordinator = Coordinator()
        with coordinator._cv:
            _seed_session(coordinator, 1, 8, priority=2.0)
            _seed_session(coordinator, 2, 8, priority=1.0)
            order = [coordinator._next_job_locked().session
                     for _ in range(6)]
        # A weight-2 session gets two slots for every one of weight-1.
        assert order.count(1) == 4
        assert order.count(2) == 2

    def test_flood_cannot_starve_small_session(self):
        coordinator = Coordinator()
        with coordinator._cv:
            _seed_session(coordinator, 1, 100)  # the flood
            _seed_session(coordinator, 2, 5)    # the small tenant
            order = [coordinator._next_job_locked().session
                     for _ in range(100)]
        # The small session fully drains within its fair share of the
        # first draws — the 100-job flood never pushes it to the back.
        assert order[:10].count(2) == 5
        assert order[10:].count(2) == 0

    def test_exhausted_sessions_cede_to_the_remaining_one(self):
        coordinator = Coordinator()
        with coordinator._cv:
            _seed_session(coordinator, 1, 2)
            _seed_session(coordinator, 2, 6)
            order = [coordinator._next_job_locked().session
                     for _ in range(8)]
            empty = coordinator._next_job_locked()
        assert sorted(order) == [1, 1, 2, 2, 2, 2, 2, 2]
        assert empty is None


class TestConcurrentSessions:
    def test_two_sessions_bit_identical_to_solo(self):
        cluster = Coordinator()
        addr = cluster.start()
        stop = threading.Event()
        workers = [_start_worker(addr, name=f"w{i}", stop=stop)
                   for i in range(2)]
        results = {}
        errors = []

        def tenant(name, values):
            try:
                with ClientSession(addr, session=name) as session:
                    tags = [session.submit(dumps_payload((_square, v)))
                            for v in values]
                    results[name] = _collect(session, tags)
            except Exception as exc:  # surfaced to the main thread
                errors.append((name, exc))

        try:
            a_vals, b_vals = list(range(10)), list(range(100, 112))
            threads = [
                threading.Thread(target=tenant, args=("a", a_vals)),
                threading.Thread(target=tenant, args=("b", b_vals)),
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, errors
            # Each tenant sees exactly what a solo serial run computes,
            # in submission order, despite interleaved dispatch.
            assert results["a"] == [v * v for v in a_vals]
            assert results["b"] == [v * v for v in b_vals]
            # Both tenants came and went: opened, drained, GCed (the
            # coordinator reaps a departed client asynchronously).
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                counters = cluster.status_report()["counters"]
                if counters["sessions_closed"] == 2:
                    break
                time.sleep(0.02)
            assert counters["sessions_opened"] == 2
            assert counters["sessions_closed"] == 2
            assert counters["jobs_completed"] == len(a_vals) + len(b_vals)
        finally:
            stop.set()
            cluster.shutdown()
            for worker in workers:
                worker.join(timeout=10)

    def test_flood_session_cannot_starve_small_one_end_to_end(self):
        cluster = Coordinator()
        addr = cluster.start()
        flood = ClientSession(addr, session="flood")
        small = ClientSession(addr, session="small")
        stop = threading.Event()
        worker = None
        try:
            flood.start()
            small.start()
            # Queue the flood first, then the small batch, and only
            # then let a single worker start draining: dispatch order
            # is the scheduler's alone.
            flood_tags = [flood.submit(dumps_payload((_slow_square, n)))
                          for n in range(40)]
            small_tags = [small.submit(dumps_payload((_slow_square, n)))
                          for n in range(4)]
            worker = _start_worker(addr, stop=stop)
            assert _collect(small, small_tags) == [n * n for n in range(4)]
            with cluster._cv:
                flood_done = next(
                    s.completed for s in cluster._sessions.values()
                    if s.name == "flood"
                )
            # Fair interleaving: when the small tenant finished, the
            # 40-job flood was still far from done.
            assert flood_done < 40
            assert _collect(flood, flood_tags) == [
                n * n for n in range(40)
            ]
        finally:
            stop.set()
            flood.close()
            small.close()
            cluster.shutdown()
            if worker is not None:
                worker.join(timeout=10)


class TestAuth:
    def test_wrong_secret_rejected_without_disturbing_live_sessions(self):
        cluster = Coordinator(secret="hunter2")
        addr = cluster.start()
        stop = threading.Event()
        worker = _start_worker(addr, secret="hunter2", stop=stop)
        live = ClientSession(addr, session="live", secret="hunter2")
        try:
            live.start()
            tags = [live.submit(dumps_payload((_square, n)))
                    for n in range(3)]
            assert _collect(live, tags) == [0, 1, 4]

            with pytest.raises(RuntimeError, match="rejected"):
                ClientSession(addr, session="evil",
                              secret="wrong").start()
            assert cluster.auth_rejections >= 1

            # The rejected hello never became a session, and the live
            # tenant keeps working as if nothing happened.
            with cluster._cv:
                names = sorted(s.name for s in
                               cluster._sessions.values())
            assert "evil" not in names
            more = [live.submit(dumps_payload((_square, n)))
                    for n in (7, 8)]
            assert _collect(live, more) == [49, 64]
        finally:
            stop.set()
            live.close()
            cluster.shutdown()
            worker.join(timeout=10)

    def test_missing_secret_rejected(self):
        cluster = Coordinator(secret="hunter2")
        addr = cluster.start()
        try:
            with pytest.raises(RuntimeError):
                ClientSession(addr, session="anon").start()
            assert cluster.auth_rejections >= 1
        finally:
            cluster.shutdown()


class TestSessionGC:
    def test_killed_client_socket_reaps_session_and_jobs(self):
        # The orphaned-batch leak: a tenant that dies without cancelling
        # must not leave its queued jobs to run (and its results to
        # accumulate) forever.  No worker is connected, so every job
        # would previously have sat queued for good.
        cluster = Coordinator()
        addr = cluster.start()
        session = ClientSession(addr, session="doomed")
        try:
            session.start()
            for n in range(5):
                session.submit(dumps_payload((_square, n)))
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with cluster._cv:
                    if any(s.name == "doomed" and len(s.queue) == 5
                           for s in cluster._sessions.values()):
                        break
                time.sleep(0.02)
            # Kill the client abruptly: no cancel, no goodbye.
            session._sock.shutdown(socket.SHUT_RDWR)
            session._sock.close()
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with cluster._cv:
                    gone = (
                        all(s.name != "doomed"
                            for s in cluster._sessions.values())
                        and not cluster._jobs
                    )
                if gone:
                    break
                time.sleep(0.02)
            assert gone, "dead tenant's session or jobs were never GCed"
            assert cluster.sessions_closed >= 1
        finally:
            session._closed = True  # the socket is already gone
            cluster.shutdown()

    def test_cancel_drops_queued_jobs(self):
        cluster = Coordinator()
        addr = cluster.start()
        session = ClientSession(addr, session="fickle")
        try:
            session.start()
            tags = [session.submit(dumps_payload((_square, n)))
                    for n in range(4)]
            session.cancel(tags)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                with cluster._cv:
                    if not cluster._jobs and cluster.jobs_cancelled >= 4:
                        break
                time.sleep(0.02)
            assert cluster.jobs_cancelled >= 4
            assert not cluster._jobs
        finally:
            session.close()
            cluster.shutdown()


class TestPrefetch:
    def test_prefetched_artifact_lands_in_worker_store(self, tmp_path):
        program = generate_test_case(
            {"ADD": 2, "LD": 1, "REG_DIST": 2},
            GenerationOptions(loop_size=60),
        )
        artifact = TraceArtifact.build(program, 2_000)
        cluster = Coordinator()
        addr = cluster.start()
        session = ClientSession(addr, session="seeder")
        stop = threading.Event()
        worker = None
        try:
            session.start()
            session.prefetch(artifact)
            # The worker joins *after* the push: its hello replays the
            # coordinator's prefetch table (late joiners still warm up).
            worker = _start_worker(addr, stop=stop,
                                   cache_dir=str(tmp_path))
            # The threaded worker attaches the process-global store.
            stop_probe = time.monotonic() + 15
            store = None
            while time.monotonic() < stop_probe:
                store = active_artifact_store()
                if store is not None and store.get(
                        artifact.fingerprint, artifact.instructions):
                    break
                time.sleep(0.05)
            assert store is not None
            assert store.get(artifact.fingerprint,
                             artifact.instructions) is not None
        finally:
            stop.set()
            session.close()
            cluster.shutdown()
            if worker is not None:
                worker.join(timeout=10)
