"""Cluster-status protocol tests: status frames, observers, reports."""

import threading
import time

import pytest

from repro.dist.coordinator import Coordinator
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    connect,
    dumps_payload,
    recv_msg,
    send_msg,
)
from repro.dist.status import fetch_cluster_status
from repro.dist.worker import run_worker
from repro.obs import format_cluster_status


def _square(x):
    return x * x


def _run_jobs(coordinator, addr, count=3, heartbeat_s=0.2):
    """Submit ``count`` jobs and drain them with one real worker.

    The worker stays connected (idle) after the batch so status tests
    can inspect its row; call the returned ``stop()`` to drain it.
    """
    job_ids = [coordinator.submit(dumps_payload((_square, n)))
               for n in range(count)]
    stop = threading.Event()
    worker = threading.Thread(
        target=run_worker, args=(addr,),
        kwargs={"name": "w1", "heartbeat_s": heartbeat_s, "stop": stop},
        daemon=True,
    )
    worker.start()
    outcomes = coordinator.wait(job_ids, timeout=60)
    assert all(status == "ok" for status, _ in outcomes)

    def stopper():
        stop.set()
        worker.join(timeout=10)

    return stopper


class TestStatusReport:
    def test_report_shape_and_worker_rows(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        stop_worker = None
        try:
            stop_worker = _run_jobs(coordinator, addr, count=3)
            deadline = time.monotonic() + 10
            while time.monotonic() < deadline:
                report = coordinator.status_report()
                rows = {w["name"]: w for w in report["workers"]}
                if rows.get("w1", {}).get("jobs_done", 0) >= 3:
                    break
                time.sleep(0.05)
            assert report["addr"] == addr
            assert report["counters"]["jobs_completed"] == 3
            assert report["counters"]["workers_seen"] == 1
            row = rows["w1"]
            assert row["proto"] == PROTOCOL_VERSION
            assert row["jobs_done"] == 3
            assert row["leases"] == 0
            assert row["heartbeat_age_s"] is not None
        finally:
            if stop_worker is not None:
                stop_worker()
            coordinator.shutdown()

    def test_cluster_metrics_merge_worker_snapshots(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        stop_worker = None
        try:
            stop_worker = _run_jobs(coordinator, addr, count=2)
            deadline = time.monotonic() + 10
            merged = {}
            while time.monotonic() < deadline:
                merged = coordinator.status_report()["cluster_metrics"]
                if merged.get("counters", {}).get(
                        "worker.jobs_executed", 0) >= 2:
                    break
                time.sleep(0.05)
            # The threaded test worker shares this process's registry, so
            # the counter is cumulative across tests — lower-bound it.
            assert merged["counters"]["worker.jobs_executed"] >= 2
        finally:
            if stop_worker is not None:
                stop_worker()
            coordinator.shutdown()


class TestObserverRole:
    def test_observer_not_counted_as_worker(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        sock = None
        try:
            sock = connect(addr)
            send_msg(sock, {"type": "hello", "worker": "watcher",
                            "proto": PROTOCOL_VERSION, "heartbeat": 0,
                            "role": "observer"})
            send_msg(sock, {"type": "status_request"})
            header, _ = recv_msg(sock, timeout=10)
            assert header["type"] == "status_reply"
            assert coordinator.worker_count() == 0
            assert coordinator.workers_seen == 0
            assert header["report"]["workers"] == []
        finally:
            if sock is not None:
                sock.close()
            coordinator.shutdown()

    def test_observer_never_receives_jobs(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        sock = None
        stop_worker = None
        try:
            sock = connect(addr)
            send_msg(sock, {"type": "hello", "worker": "watcher",
                            "proto": PROTOCOL_VERSION, "heartbeat": 0,
                            "role": "observer"})
            stop_worker = _run_jobs(coordinator, addr, count=2)
            # All jobs resolved by the real worker; the observer socket
            # must have seen no job frames (nothing to read but our own
            # replies — there were no requests, so nothing at all).
            sock.settimeout(0.2)
            try:
                header, _ = recv_msg(sock, timeout=0.2)
            except Exception:
                header = None
            assert header is None or header.get("type") != "job"
        finally:
            if sock is not None:
                sock.close()
            if stop_worker is not None:
                stop_worker()
            coordinator.shutdown()


class TestFetchClusterStatus:
    def test_round_trip_against_live_coordinator(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        stop_worker = None
        try:
            stop_worker = _run_jobs(coordinator, addr, count=3)
            report = fetch_cluster_status(addr, timeout=10)
            assert report["addr"] == addr
            assert report["counters"]["jobs_completed"] == 3
            # The observer hello behind fetch_cluster_status must not
            # pollute worker accounting: one real worker, still one.
            assert coordinator.worker_count() == 1
            assert coordinator.workers_seen == 1
            text = format_cluster_status(report)
            assert addr in text
            assert "jobs_completed=3" in text
        finally:
            if stop_worker is not None:
                stop_worker()
            coordinator.shutdown()

    def test_unreachable_coordinator_raises_without_retries(self):
        probe = Coordinator()
        dead_addr = probe.start()
        probe.shutdown()
        with pytest.raises((ConnectionError, OSError, TimeoutError)):
            fetch_cluster_status(dead_addr, timeout=1.0)

    def test_retries_cover_a_coordinator_still_coming_up(self):
        # Reserve a port, then bring the coordinator up only after a
        # delay: the first attempt(s) fail, a retry succeeds.
        import socket as socket_mod

        probe = socket_mod.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        coordinator = Coordinator(port=port)

        def late_start():
            time.sleep(0.7)
            coordinator.start()

        starter = threading.Thread(target=late_start, daemon=True)
        starter.start()
        try:
            report = fetch_cluster_status(
                f"127.0.0.1:{port}", timeout=2.0, retries=10)
            assert report["addr"] == f"127.0.0.1:{port}"
        finally:
            starter.join(timeout=5)
            coordinator.shutdown()

    def test_secured_coordinator_round_trip_and_rejection(self):
        coordinator = Coordinator(secret="hunter2")
        addr = coordinator.start()
        try:
            report = fetch_cluster_status(addr, timeout=10,
                                          secret="hunter2")
            assert report["addr"] == addr
            # A wrong secret is a PermissionError immediately — never
            # retried, a wrong secret does not become right by asking.
            before = coordinator.auth_rejections
            with pytest.raises(PermissionError, match="rejected"):
                fetch_cluster_status(addr, timeout=10, retries=5,
                                     secret="wrong")
            assert coordinator.auth_rejections == before + 1
        finally:
            coordinator.shutdown()
