"""DistributedBackend tests: ordering, reuse, errors, bit-identity."""

import threading

import pytest

from repro.codegen.wrapper import GenerationOptions
from repro.core.platform import PerformancePlatform
from repro.dist.backend import DistributedBackend
from repro.dist.coordinator import Coordinator
from repro.dist.protocol import dumps_payload, loads_payload
from repro.dist.worker import run_worker
from repro.exec.backend import SerialBackend, backend_for
from repro.exec.jobs import evaluate_configs
from repro.sim.config import core_by_name


def _square(x):
    return x * x


def _boom(x):
    raise ValueError(f"bad item {x}")


class TestDistributedBackend:
    def test_maps_in_order(self):
        with DistributedBackend(spawn_workers=2) as backend:
            assert backend.map(_square, list(range(12))) == [
                n * n for n in range(12)
            ]

    def test_empty_batch_never_starts_cluster(self):
        backend = DistributedBackend(spawn_workers=2)
        assert backend.map(_square, []) == []
        assert backend.coordinator is None
        backend.close()

    def test_coordinator_reused_across_batches(self):
        with DistributedBackend(spawn_workers=2) as backend:
            assert backend.map(_square, [1, 2]) == [1, 4]
            coordinator = backend.coordinator
            assert backend.map(_square, [3, 4]) == [9, 16]
            assert backend.coordinator is coordinator

    def test_worker_exception_propagates(self):
        with DistributedBackend(spawn_workers=1) as backend:
            with pytest.raises(RuntimeError, match="bad item 7"):
                backend.map(_boom, [7])

    def test_close_is_idempotent(self):
        backend = DistributedBackend(spawn_workers=1)
        backend.map(_square, [2])
        backend.close()
        backend.close()

    def test_name_and_jobs(self):
        backend = DistributedBackend(jobs=3, spawn_workers=2)
        assert backend.name == "dist[3]"
        assert backend.jobs == 3
        backend.close()
        addressed = DistributedBackend(addr="127.0.0.1:0", spawn_workers=0)
        assert "@127.0.0.1:0" in addressed.name
        addressed.close()

    def test_external_worker_joins(self):
        # An addressed backend is a tenant of a persistent cluster it
        # does not own: here a standalone coordinator plus a worker
        # thread standing in for `repro.cli serve` + a remote host.
        cluster = Coordinator()
        addr = cluster.start()
        worker = threading.Thread(
            target=run_worker, args=(addr,),
            kwargs={"name": "external"}, daemon=True,
        )
        worker.start()
        backend = DistributedBackend(addr=addr, worker_grace=20.0)
        try:
            assert backend.map(_square, [5, 6]) == [25, 36]
            # The tenant spawned and owns nothing of the cluster.
            assert backend.coordinator is None
            assert backend.pool is None
        finally:
            backend.close()
            cluster.shutdown()
            worker.join(timeout=5)

    def test_client_mode_rejects_spawn_workers(self):
        with pytest.raises(ValueError, match="external persistent"):
            DistributedBackend(addr="127.0.0.1:9900", spawn_workers=2)

    def test_backend_for_builds_dist(self):
        backend = backend_for("dist", jobs=2, dist_workers=1)
        try:
            assert isinstance(backend, DistributedBackend)
            assert backend.spawn_workers == 1
            assert backend.map(_square, [3]) == [9]
        finally:
            backend.close()

    def test_backend_for_propagates_cache_settings(self, tmp_path):
        for name in ("serial", "thread", "process", "dist", "auto"):
            backend = backend_for(name, jobs=2, cache_dir=str(tmp_path),
                                  cache_max_entries=5)
            assert backend.cache_dir == str(tmp_path)
            assert backend.cache_max_entries == 5
            root, cap = backend.artifact_store_spec()
            assert root.endswith("artifacts")
            assert cap == 5
            backend.close()

    def test_unknown_backend_lists_valid_names(self):
        with pytest.raises(ValueError, match="serial|thread|process|dist"):
            backend_for("gpu", jobs=1)

    def test_dist_flags_rejected_on_other_backends(self):
        # Silently dropping these would leave remote workers pointed at
        # a coordinator that never binds.
        with pytest.raises(ValueError, match="backend='dist'"):
            backend_for("auto", jobs=4, dist_addr="127.0.0.1:9900")
        with pytest.raises(ValueError, match="backend='dist'"):
            backend_for("serial", jobs=1, dist_workers=2)

    def test_unreachable_cluster_is_loud(self):
        # An addressed backend pointed at a dead cluster must raise,
        # not silently degrade to a local serial run.
        probe = Coordinator()
        dead_addr = probe.start()
        probe.shutdown()  # nothing listens there anymore
        backend = DistributedBackend(addr=dead_addr)
        with pytest.raises(RuntimeError, match="cannot reach"):
            backend.map(_square, [1])
        backend.close()

    def test_implicit_addr_degrades_to_serial_on_bind_failure(self):
        backend = DistributedBackend(spawn_workers=1)
        backend._broken = True  # simulate an unbindable sandbox
        assert backend.map(_square, [4]) == [16]
        backend.close()


class TestBitIdentity:
    def test_dist_sweep_matches_serial_exactly(self):
        configs = [
            {"ADD": n % 5 + 1, "LD": n % 3, "REG_DIST": 2} for n in range(6)
        ]
        platform = PerformancePlatform(core_by_name("small"),
                                       instructions=2_000)
        options = GenerationOptions(loop_size=80)
        serial = evaluate_configs(SerialBackend(), platform, options, configs)
        with DistributedBackend(spawn_workers=2) as backend:
            parallel = evaluate_configs(backend, platform, options, configs)
        assert parallel == serial


class TestCoordinator:
    def test_submit_wait_roundtrip(self):
        coordinator = Coordinator()
        addr = coordinator.start()
        worker = threading.Thread(target=run_worker, args=(addr,),
                                  daemon=True)
        worker.start()
        try:
            ids = [coordinator.submit(dumps_payload((_square, n)))
                   for n in range(4)]
            outcomes = coordinator.wait(ids, timeout=20)
            assert [loads_payload(v) for _, v in outcomes] == [0, 1, 4, 9]
            assert all(status == "ok" for status, _ in outcomes)
        finally:
            coordinator.shutdown()
            worker.join(timeout=5)

    def test_wait_times_out(self):
        coordinator = Coordinator()
        coordinator.start()
        try:
            job = coordinator.submit(dumps_payload((_square, 2)))
            with pytest.raises(TimeoutError):
                coordinator.wait([job], timeout=0.2, worker_grace=60.0)
        finally:
            coordinator.shutdown()

    def test_empty_cluster_fails_after_grace(self):
        coordinator = Coordinator()
        coordinator.start()
        try:
            job = coordinator.submit(dumps_payload((_square, 2)))
            with pytest.raises(RuntimeError, match="no worker connected"):
                coordinator.wait([job], worker_grace=0.2)
        finally:
            coordinator.shutdown()

    def test_fully_crashed_fleet_fails_after_grace(self):
        # A cluster whose every worker died must not hang wait forever:
        # the grace timer re-arms when the connection count hits zero.
        coordinator = Coordinator()
        addr = coordinator.start()
        worker = threading.Thread(
            target=run_worker, args=(addr,), kwargs={"max_jobs": 1},
            daemon=True,
        )
        worker.start()
        try:
            first = coordinator.submit(dumps_payload((_square, 3)))
            (status, payload), = coordinator.wait([first], timeout=20)
            assert loads_payload(payload) == 9
            worker.join(timeout=10)  # max_jobs reached: worker leaves
            orphan = coordinator.submit(dumps_payload((_square, 4)))
            with pytest.raises(RuntimeError,
                               match="every worker disconnected"):
                coordinator.wait([orphan], worker_grace=0.3)
        finally:
            coordinator.shutdown()

    def test_submit_after_shutdown_rejected(self):
        coordinator = Coordinator()
        coordinator.start()
        coordinator.shutdown()
        with pytest.raises(RuntimeError):
            coordinator.submit(b"x")

    def test_forgotten_jobs_do_not_poison_workers(self):
        # An abandoned batch (wait timed out, caller forgot the jobs)
        # leaves stale ids in the queue; a worker requesting afterwards
        # must skip them and keep serving, not lose its connection.
        coordinator = Coordinator()
        addr = coordinator.start()
        stale = [coordinator.submit(dumps_payload((_square, n)))
                 for n in range(3)]
        coordinator.forget(stale)
        worker = threading.Thread(target=run_worker, args=(addr,),
                                  daemon=True)
        worker.start()
        try:
            live = coordinator.submit(dumps_payload((_square, 9)))
            (status, payload), = coordinator.wait([live], timeout=20)
            assert status == "ok"
            assert loads_payload(payload) == 81
        finally:
            coordinator.shutdown()
            worker.join(timeout=5)
