"""Run-report tests: document shape, derived rates, renderers."""

import json

from repro.obs import (
    MetricsRegistry,
    RUN_REPORT_SCHEMA,
    build_run_report,
    format_cluster_status,
    format_run_report,
)


def _snapshot():
    registry = MetricsRegistry(enabled=True)
    registry.inc("engine_path.memory.vectorized", 10)
    registry.inc("engine_path.evaluate.group", 2)
    registry.inc("cache.result.hits", 3)
    registry.inc("cache.result.misses", 1)
    registry.inc("evaluator.requested", 8)
    registry.inc("evaluator.unique", 6)
    registry.set_gauge("workers", 4)
    registry.observe("codegen", 0.25)
    registry.observe("codegen", 0.75)
    registry.observe("interval.batch", 0.5)
    return registry.snapshot()


class TestBuildRunReport:
    def test_schema_and_sections(self):
        report = build_run_report(_snapshot(), wall_s=2.0,
                                  extra={"tuner": "gd"})
        assert report["schema"] == RUN_REPORT_SCHEMA
        assert report["wall_s"] == 2.0
        assert report["run"] == {"tuner": "gd"}
        assert set(report) >= {"stages", "counters", "gauges",
                               "engine_paths", "rates"}

    def test_stage_breakdown(self):
        report = build_run_report(_snapshot(), wall_s=2.0)
        stage = report["stages"]["codegen"]
        assert stage["count"] == 2
        assert stage["total_s"] == 1.0
        assert stage["mean_s"] == 0.5
        assert stage["min_s"] == 0.25
        assert stage["max_s"] == 0.75
        assert stage["share_of_wall"] == 0.5

    def test_engine_paths_prefix_stripped(self):
        report = build_run_report(_snapshot())
        assert report["engine_paths"] == {
            "memory.vectorized": 10, "evaluate.group": 2,
        }

    def test_rates(self):
        report = build_run_report(_snapshot())
        assert report["rates"]["result_cache_hit_rate"] == 0.75
        assert report["rates"]["artifact_store_hit_rate"] is None
        assert report["rates"]["evaluator_dedup_rate"] == 0.25

    def test_report_is_json_serializable(self):
        report = build_run_report(_snapshot(), wall_s=1.5,
                                  extra={"epochs": 3})
        assert json.loads(json.dumps(report)) == report

    def test_empty_snapshot(self):
        registry = MetricsRegistry(enabled=True)
        report = build_run_report(registry.snapshot())
        assert report["stages"] == {}
        assert report["engine_paths"] == {}
        assert all(v is None for v in report["rates"].values())


class TestRenderers:
    def test_format_run_report_mentions_stages_and_rates(self):
        text = format_run_report(build_run_report(_snapshot(), wall_s=2.0))
        assert "codegen" in text
        assert "interval.batch" in text
        assert "memory.vectorized: 10" in text
        assert "result_cache_hit_rate=75.0%" in text

    def test_format_cluster_status(self):
        report = {
            "addr": "127.0.0.1:5000",
            "pending": 2,
            "unresolved": 1,
            "counters": {"jobs_completed": 7, "workers_seen": 2},
            "workers": [
                {"name": "w1", "proto": 2, "leases": 1, "jobs_done": 4,
                 "heartbeat_age_s": 0.3},
                {"name": "w2", "proto": 2, "leases": 0, "jobs_done": 3,
                 "heartbeat_age_s": None},
            ],
            "cluster_metrics": {
                "counters": {"worker.jobs_executed": 7},
            },
        }
        text = format_cluster_status(report)
        assert "127.0.0.1:5000" in text
        assert "2 worker(s)" in text
        assert "jobs_completed=7" in text
        assert "w1" in text and "0.3s ago" in text
        assert "w2" in text and "?" in text
        assert "worker.jobs_executed: 7" in text

    def test_format_cluster_status_empty_cluster(self):
        text = format_cluster_status({"addr": "x:1"})
        assert "0 worker(s)" in text
