"""Metrics registry tests: counters, gauges, spans, thread safety."""

import threading

import pytest

from repro import obs
from repro.obs import MetricsRegistry
from repro.sim.events import (
    engine_path_counts,
    record_engine_path,
    reset_engine_path_counts,
)


@pytest.fixture
def registry():
    return MetricsRegistry(enabled=True)


class TestCounters:
    def test_inc_accumulates(self, registry):
        registry.inc("a")
        registry.inc("a", 4)
        assert registry.counters() == {"a": 5}

    def test_counters_prefix_filter(self, registry):
        registry.inc("cache.hits", 2)
        registry.inc("cache.misses")
        registry.inc("other")
        assert registry.counters("cache.") == {
            "cache.hits": 2, "cache.misses": 1,
        }

    def test_reset_prefix_keeps_other_counters(self, registry):
        registry.inc("cache.hits")
        registry.inc("other")
        registry.reset("cache.")
        assert registry.counters() == {"other": 1}

    def test_reset_all(self, registry):
        registry.inc("a")
        registry.set_gauge("g", 3)
        registry.observe("t", 0.5)
        registry.reset()
        assert registry.snapshot().is_empty()


class TestGauges:
    def test_set_gauge_overwrites(self, registry):
        registry.set_gauge("workers", 4)
        registry.set_gauge("workers", 2)
        assert registry.snapshot().gauges == {"workers": 2}


class TestSpans:
    def test_span_records_timing(self, registry):
        with registry.span("stage"):
            pass
        snap = registry.snapshot()
        stat = snap.timers["stage"]
        assert stat.count == 1
        assert stat.total_s >= 0
        assert stat.min_s <= stat.max_s

    def test_nested_spans(self, registry):
        with registry.span("outer"):
            with registry.span("inner"):
                pass
        snap = registry.snapshot()
        assert snap.timers["outer"].count == 1
        assert snap.timers["inner"].count == 1

    def test_span_records_on_exception(self, registry):
        with pytest.raises(ValueError):
            with registry.span("stage"):
                raise ValueError("boom")
        assert registry.snapshot().timers["stage"].count == 1


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("a")
        registry.set_gauge("g", 1)
        with registry.span("stage"):
            pass
        assert registry.snapshot().is_empty()

    def test_set_enabled_toggles(self, registry):
        registry.set_enabled(False)
        registry.inc("a")
        registry.set_enabled(True)
        registry.inc("a")
        assert registry.counters() == {"a": 1}


class TestThreadSafety:
    def test_concurrent_increments_from_8_threads(self, registry):
        """Regression: += on a plain dict dropped updates under threads."""
        threads, per_thread = 8, 5_000

        def hammer():
            for _ in range(per_thread):
                registry.inc("shared")

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert registry.counters()["shared"] == threads * per_thread


class TestEnginePathCompatShim:
    def test_engine_path_counts_hammered_from_8_threads(self):
        """The old process-global Counter raced under ThreadBackend."""
        reset_engine_path_counts()
        try:
            threads, per_thread = 8, 5_000

            def hammer():
                for _ in range(per_thread):
                    record_engine_path("memory.vectorized")

            pool = [threading.Thread(target=hammer) for _ in range(threads)]
            for t in pool:
                t.start()
            for t in pool:
                t.join()
            assert engine_path_counts() == {
                "memory.vectorized": threads * per_thread,
            }
        finally:
            reset_engine_path_counts()

    def test_counts_round_trip_through_registry(self):
        reset_engine_path_counts()
        try:
            record_engine_path("evaluate.group", 3)
            assert engine_path_counts() == {"evaluate.group": 3}
            assert obs.counters("engine_path.") == {
                "engine_path.evaluate.group": 3,
            }
        finally:
            reset_engine_path_counts()
