"""Cross-backend metric parity: the same batch, counted identically.

Every backend ships its workers' metric snapshots home (serial and
thread record directly; process and dist return snapshots with the
chunk results), so a run-level collection scope must see the same
merged counter totals no matter where the work ran.  Only
chunking-invariant counters are compared — per-chunk bookkeeping like
``engine_path.evaluate.batch`` legitimately varies with worker count.
"""

from repro import obs
from repro.codegen.wrapper import GenerationOptions
from repro.core.platform import PerformancePlatform
from repro.dist.backend import DistributedBackend
from repro.exec.backend import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.exec.jobs import evaluate_configs
from repro.sim.config import core_by_name

# Pairwise-distinct ADD:LD ratios keep every equivalence group a
# singleton: group-splitting chunk layouts (batch_group_min=1) would
# otherwise legitimately re-generate a split group's representative and
# skew the codegen/evaluate.group counters between backends.
CONFIGS = [
    {"ADD": n + 1, "LD": 8 - n, "BEQ": n % 2, "REG_DIST": 2}
    for n in range(8)
]

#: Counters that must not depend on how the batch was chunked.
INVARIANT = ("engine_path.", "codegen.", "evaluator.")
#: ...except per-chunk dispatch bookkeeping.
CHUNK_DEPENDENT = ("engine_path.evaluate.batch",)


def _invariant_counters(snapshot):
    return {
        name: value for name, value in snapshot.counters.items()
        if name.startswith(INVARIANT) and name not in CHUNK_DEPENDENT
    }


def _run(backend):
    """Evaluate CONFIGS on ``backend`` inside a fresh collection scope."""
    platform = PerformancePlatform(core_by_name("small"),
                                   instructions=2_000)
    with obs.collect() as scope:
        results = evaluate_configs(
            backend, platform, GenerationOptions(loop_size=80), CONFIGS,
        )
    return results, _invariant_counters(scope.snapshot())


class TestBackendCounterParity:
    def test_thread_matches_serial(self):
        serial_results, serial_counts = _run(SerialBackend())
        with ThreadBackend(jobs=4) as backend:
            thread_results, thread_counts = _run(backend)
        assert thread_results == serial_results
        assert thread_counts == serial_counts
        assert serial_counts  # the comparison must not be vacuous

    def test_process_matches_serial(self):
        serial_results, serial_counts = _run(SerialBackend())
        with ProcessPoolBackend(jobs=2) as backend:
            process_results, process_counts = _run(backend)
        assert process_results == serial_results
        assert process_counts == serial_counts

    def test_dist_matches_serial(self):
        serial_results, serial_counts = _run(SerialBackend())
        with DistributedBackend(spawn_workers=2) as backend:
            dist_results, dist_counts = _run(backend)
        assert dist_results == serial_results
        assert dist_counts == serial_counts


class TestSnapshotTransportAccounting:
    def test_process_chunk_snapshots_cover_all_work(self):
        """Worker-side counters actually cross the process boundary."""
        with ProcessPoolBackend(jobs=2) as backend:
            _, counts = _run(backend)
        # Codegen happens only inside worker processes on this path; a
        # lost snapshot would show zero programs generated.
        assert counts.get("codegen.programs", 0) >= len(CONFIGS)
