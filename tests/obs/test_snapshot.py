"""Snapshot tests: merge algebra (hypothesis), pickling, wire format."""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.obs import MetricsRegistry, MetricsSnapshot, TimerStat, local_origin

names = st.sampled_from(["a", "b", "cache.hits", "engine_path.x"])
counter_tables = st.dictionaries(names, st.integers(0, 10**6), max_size=4)
gauge_tables = st.dictionaries(names, st.integers(-100, 100), max_size=4)
timer_stats = st.builds(
    lambda count, unit: TimerStat(
        count=count,
        total_s=count * unit,
        min_s=unit,
        max_s=unit,
    ),
    st.integers(1, 50),
    st.sampled_from([0.25, 0.5, 1.0, 2.0]),
)
timer_tables = st.dictionaries(names, timer_stats, max_size=3)
snapshots = st.builds(
    lambda c, g, t: MetricsSnapshot(counters=c, gauges=g, timers=t),
    counter_tables, gauge_tables, timer_tables,
)


def _canon(snap):
    return (
        dict(snap.counters),
        dict(snap.gauges),
        {k: (v.count, v.total_s, v.min_s, v.max_s)
         for k, v in snap.timers.items()},
    )


class TestMergeAlgebra:
    @given(snapshots, snapshots)
    @settings(max_examples=60, deadline=None)
    def test_merge_commutative(self, a, b):
        assert _canon(a.merge(b)) == _canon(b.merge(a))

    @given(snapshots, snapshots, snapshots)
    @settings(max_examples=60, deadline=None)
    def test_merge_associative(self, a, b, c):
        assert _canon(a.merge(b).merge(c)) == _canon(a.merge(b.merge(c)))

    @given(snapshots)
    @settings(max_examples=30, deadline=None)
    def test_merge_with_empty_is_identity(self, a):
        assert _canon(a.merge(MetricsSnapshot())) == _canon(a)

    def test_counters_sum_gauges_max_timers_fold(self):
        a = MetricsSnapshot(
            counters={"c": 2}, gauges={"g": 5},
            timers={"t": TimerStat(count=1, total_s=1.0, min_s=1.0,
                                   max_s=1.0)},
        )
        b = MetricsSnapshot(
            counters={"c": 3}, gauges={"g": 4},
            timers={"t": TimerStat(count=2, total_s=6.0, min_s=0.5,
                                   max_s=4.0)},
        )
        merged = a.merge(b)
        assert merged.counters == {"c": 5}
        assert merged.gauges == {"g": 5}
        stat = merged.timers["t"]
        assert (stat.count, stat.total_s, stat.min_s, stat.max_s) == \
            (3, 7.0, 0.5, 4.0)


class TestTransport:
    def test_snapshot_pickles(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("a", 2)
        registry.observe("t", 0.5)
        snap = registry.snapshot()
        clone = pickle.loads(pickle.dumps(snap))
        assert _canon(clone) == _canon(snap)
        assert clone.origin == snap.origin

    @given(snapshots)
    @settings(max_examples=40, deadline=None)
    def test_dict_round_trip(self, snap):
        clone = MetricsSnapshot.from_dict(snap.to_dict())
        assert _canon(clone) == _canon(snap)

    def test_snapshot_carries_local_origin(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("a")
        assert registry.snapshot().origin == local_origin()


class TestMergeRemote:
    def test_same_origin_snapshot_skipped(self):
        """Serial/thread echoes already hit the registry directly."""
        registry = MetricsRegistry(enabled=True)
        registry.inc("a")
        snap = registry.snapshot()
        assert not registry.merge_remote(snap)
        assert registry.counters() == {"a": 1}

    def test_foreign_origin_snapshot_merged(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("a")
        foreign = MetricsSnapshot(counters={"a": 2, "b": 1},
                                  origin=("elsewhere", 1))
        assert registry.merge_remote(foreign)
        assert registry.counters() == {"a": 3, "b": 1}

    def test_merge_remote_accepts_wire_dict(self):
        registry = MetricsRegistry(enabled=True)
        wire = MetricsSnapshot(counters={"x": 4},
                               origin=("elsewhere", 2)).to_dict()
        assert registry.merge_remote(wire)
        assert registry.counters() == {"x": 4}

    def test_merge_remote_lands_in_active_scopes(self):
        registry = MetricsRegistry(enabled=True)
        foreign = MetricsSnapshot(counters={"a": 2}, origin=("other", 3))
        with registry.collect() as scope:
            registry.merge_remote(foreign)
        assert scope.snapshot().counters == {"a": 2}


class TestCollectScopes:
    def test_scope_sees_only_its_window(self):
        registry = MetricsRegistry(enabled=True)
        registry.inc("before")
        with registry.collect() as scope:
            registry.inc("during", 2)
        registry.inc("after")
        assert scope.snapshot().counters == {"during": 2}

    def test_nested_scopes_both_collect(self):
        registry = MetricsRegistry(enabled=True)
        with registry.collect() as outer:
            registry.inc("a")
            with registry.collect() as inner:
                registry.inc("b")
        assert outer.snapshot().counters == {"a": 1, "b": 1}
        assert inner.snapshot().counters == {"b": 1}

    def test_scope_sees_other_threads(self):
        """Scopes are process-global so pool worker threads land in them."""
        import threading

        registry = MetricsRegistry(enabled=True)
        with registry.collect() as scope:
            t = threading.Thread(target=lambda: registry.inc("cross"))
            t.start()
            t.join()
        assert scope.snapshot().counters == {"cross": 1}


class TestModuleHelpers:
    def test_module_level_helpers_hit_global_registry(self):
        with obs.collect() as scope:
            obs.inc("helper.counter", 2)
            with obs.span("helper.stage"):
                pass
        snap = scope.snapshot()
        assert snap.counters["helper.counter"] == 2
        assert snap.timers["helper.stage"].count == 1
