"""Repository hygiene gates: documentation and API-surface checks."""

import importlib
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def _walk_modules():
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        yield info.name


ALL_MODULES = sorted(_walk_modules())


class TestDocumentationArtifacts:
    @pytest.mark.parametrize("name", ["README.md", "DESIGN.md",
                                      "EXPERIMENTS.md"])
    def test_top_level_docs_exist_and_are_substantial(self, name):
        path = REPO_ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1_000, f"{name} looks stubbed"

    def test_design_maps_every_experiment(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for experiment in ("Table I", "Table II", "Table III",
                           "Fig 2", "Fig 3", "Fig 4", "Fig 5", "Fig 6"):
            assert experiment in text, experiment

    def test_every_example_is_documented_in_readme(self):
        readme = (REPO_ROOT / "README.md").read_text()
        for example in sorted((REPO_ROOT / "examples").glob("*.py")):
            assert example.name in readme, example.name

    def test_every_figure_and_table_has_a_benchmark(self):
        benches = {p.name for p in (REPO_ROOT / "benchmarks").glob("test_*.py")}
        for required in (
            "test_table1_ga_params.py", "test_table2_cores.py",
            "test_table3_power_mix.py", "test_fig2_cloning_large.py",
            "test_fig3_cloning_small.py", "test_fig4_cloning_ga.py",
            "test_fig5_perf_virus.py", "test_fig6_power_virus.py",
            "test_cost_accounting.py",
        ):
            assert required in benches, required


class TestApiSurface:
    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_has_a_docstring(self, module_name):
        module = importlib.import_module(module_name)
        assert module.__doc__, f"{module_name} lacks a module docstring"

    @pytest.mark.parametrize("module_name", ALL_MODULES)
    def test_every_module_imports_cleanly(self, module_name):
        importlib.import_module(module_name)

    def test_public_facade_exports(self):
        assert set(repro.__all__) >= {"MicroGrad", "MicroGradConfig",
                                      "MicroGradResult"}

    def test_examples_have_usage_docstrings(self):
        for example in (REPO_ROOT / "examples").glob("*.py"):
            text = example.read_text()
            assert '"""' in text.split("\n", 2)[-1] or text.startswith(
                '#!/usr/bin/env python3\n"""'
            ), f"{example.name} lacks a docstring"
            assert "Usage" in text, f"{example.name} lacks usage notes"
