"""Generation-batched evaluation: bit-identity with the per-config path.

The grouped fast path (generation fingerprints → one generation + one
config-batched shared simulation pass per equivalence group) is a pure
dispatch optimisation.  These tests pin the contract end to end: the
job layer, a whole GA tuning run, and the engine-path counters that
prove the batch actually served the work.
"""

import pytest

from repro.codegen.wrapper import GenerationOptions
from repro.core.config import MicroGradConfig
from repro.core.framework import MicroGrad
from repro.core.platform import (
    PerformancePlatform,
    SimulationPlatformMixin,
)
from repro.exec.backend import ProcessPoolBackend, SerialBackend
from repro.exec.jobs import evaluate_configs, evaluate_configs_stream
from repro.sim.config import core_by_name
from repro.sim.events import engine_path_counts, reset_engine_path_counts

MIX_KNOBS = ("ADD", "MUL", "FADDD", "FMULD", "BEQ", "BNE",
             "LD", "LW", "SD", "SW")

#: A GA-generation-shaped batch: clones (exact duplicates), a
#: proportionally scaled twin, and genuinely distinct individuals.
CONFIGS = [
    {"ADD": 4, "BEQ": 1, "REG_DIST": 2, "B_PATTERN": 0.1},
    {"ADD": 1, "LD": 4, "SD": 2, "MEM_SIZE": 16, "REG_DIST": 4},
    {"ADD": 4, "BEQ": 1, "REG_DIST": 2, "B_PATTERN": 0.1},  # clone of 0
    {"ADD": 8, "BEQ": 2, "REG_DIST": 2, "B_PATTERN": 0.1},  # scaled 0
    {"MUL": 3, "FADDD": 2, "BNE": 1, "REG_DIST": 6},
    {"ADD": 1, "LD": 4, "SD": 2, "MEM_SIZE": 16, "REG_DIST": 4},  # clone
]


def _platform():
    return PerformancePlatform(core_by_name("small"), instructions=2_000)


def _per_config(monkeypatch):
    """Force the legacy per-config path for a comparison arm."""
    monkeypatch.setattr(
        SimulationPlatformMixin, "supports_config_batch", False
    )


class TestEvaluateConfigsGrouped:
    def test_grouped_matches_per_config_bitwise(self, monkeypatch):
        options = GenerationOptions(loop_size=120)
        reset_engine_path_counts()
        grouped = evaluate_configs(
            SerialBackend(), _platform(), options, CONFIGS
        )
        paths = engine_path_counts()
        with monkeypatch.context() as m:
            _per_config(m)
            legacy = evaluate_configs(
                SerialBackend(), _platform(), options, CONFIGS
            )
        assert grouped == legacy
        # 6 configs collapse to 3 equivalence groups: {0, its clone 2,
        # its proportionally scaled twin 3}, {1, its clone 5}, {4}.
        assert paths.get("evaluate.group") == 3
        assert not paths.get("evaluate.single")

    def test_stream_matches_batch(self):
        options = GenerationOptions(loop_size=120)
        platform = _platform()
        batch = evaluate_configs(
            SerialBackend(), platform, options, CONFIGS
        )
        stream = list(evaluate_configs_stream(
            SerialBackend(), platform, options, CONFIGS
        ))
        assert stream == batch

    def test_process_pool_matches_serial(self):
        options = GenerationOptions(loop_size=120)
        platform = _platform()
        serial = evaluate_configs(
            SerialBackend(), platform, options, CONFIGS
        )
        with ProcessPoolBackend(jobs=2, batch_group_min=2) as backend:
            parallel = evaluate_configs(backend, platform, options, CONFIGS)
        assert parallel == serial


class TestFullRunBitIdentity:
    """A whole tuning run through the batched path, stat for stat."""

    def _config(self, tuner):
        return MicroGradConfig(
            use_case="stress",
            metrics=("ipc",),
            core="small",
            tuner=tuner,
            max_epochs=3,
            loop_size=160,
            instructions=3_000,
            knobs=MIX_KNOBS,
            seed=5,
        )

    @pytest.mark.parametrize("tuner", ["ga", "gd", "random"])
    def test_batched_run_equals_per_config_run(self, tuner, monkeypatch):
        reset_engine_path_counts()
        batched = MicroGrad(self._config(tuner)).run()
        paths = engine_path_counts()
        with monkeypatch.context() as m:
            _per_config(m)
            legacy = MicroGrad(self._config(tuner)).run()

        assert batched.metrics == legacy.metrics
        assert batched.knobs == legacy.knobs
        assert batched.tuning.best_metrics == legacy.tuning.best_metrics
        assert batched.tuning.loss_curve() == legacy.tuning.loss_curve()
        assert batched.tuning.requested_evaluations == \
            legacy.tuning.requested_evaluations
        assert batched.tuning.unique_evaluations == \
            legacy.tuning.unique_evaluations
        # The batched arm must have served every computed config through
        # the grouped path — the per-config job never ran.
        assert paths.get("evaluate.batch")
        assert paths.get("evaluate.group")
        assert not paths.get("evaluate.single")
