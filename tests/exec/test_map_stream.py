"""``map_stream``: incremental results, identical to ``map``, everywhere.

Two properties, asserted per backend:

* **equivalence** — ``list(map_stream(fn, items)) == map(fn, items)``:
  same values, same input order, on every backend.
* **incrementality** — the first result is observed while the last job
  is still running (proved with a gate the consumer only opens *after*
  seeing the first result; an implementation that buffered the whole
  batch would deadlock and be killed by the gate's own timeout).
"""

import os
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.dist.backend import DistributedBackend
from repro.exec.backend import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.exec.jobs import evaluate_configs, evaluate_configs_stream
from repro.tuning.evaluator import Evaluator
from repro.tuning.knobs import Knob, KnobSpace


def _square(x):
    return x * x


def _gated(item):
    """Job 1 busy-waits on a file gate; every other job returns at once."""
    gate, index = item
    if index == 1:
        deadline = time.monotonic() + 30
        while not os.path.exists(gate):
            assert time.monotonic() < deadline, "gate never opened"
            time.sleep(0.01)
    return index * 10


def _all_backends():
    return [
        SerialBackend(),
        ThreadBackend(jobs=2),
        ProcessPoolBackend(jobs=2),
        DistributedBackend(spawn_workers=2),
    ]


class TestStreamEqualsMap:
    def test_stream_matches_map_on_every_backend(self):
        items = list(range(10))
        for backend in _all_backends():
            try:
                expected = backend.map(_square, items)
                streamed = list(backend.map_stream(_square, items))
                assert streamed == expected, backend.name
                assert streamed == [n * n for n in items], backend.name
            finally:
                backend.close()

    def test_empty_stream_on_every_backend(self):
        for backend in _all_backends():
            try:
                assert list(backend.map_stream(_square, [])) == []
            finally:
                backend.close()


class TestIncrementality:
    def test_thread_stream_yields_before_last_job_finishes(self):
        gate = threading.Event()

        def job(index):
            if index == 1:
                assert gate.wait(30), "gate never opened"
            return index * 10

        with ThreadBackend(jobs=2) as backend:
            stream = backend.map_stream(job, [0, 1])
            # Job 1 cannot finish until we open the gate — so if this
            # yields, the first result arrived before the last job ended.
            assert next(stream) == 0
            gate.set()
            assert list(stream) == [10]

    def test_dist_stream_yields_before_last_job_finishes(self, tmp_path):
        gate = str(tmp_path / "gate")
        with DistributedBackend(spawn_workers=2) as backend:
            stream = backend.map_stream(_gated, [(gate, 0), (gate, 1)])
            assert next(stream) == 0
            Path(gate).touch()
            assert list(stream) == [10]

    def test_abandoned_dist_stream_forgets_its_jobs(self, tmp_path):
        gate = str(tmp_path / "gate")
        Path(gate).touch()  # nothing blocks; we just stop consuming
        with DistributedBackend(spawn_workers=2) as backend:
            stream = backend.map_stream(_gated, [(gate, n) for n in range(4)])
            assert next(stream) == 0
            stream.close()  # abandon mid-stream
            coordinator = backend.coordinator
            deadline = time.monotonic() + 10
            while coordinator._results and time.monotonic() < deadline:
                time.sleep(0.01)
            assert not coordinator._results  # nothing leaks
            assert not coordinator._jobs


class TestStreamingEvaluation:
    def test_evaluate_configs_stream_matches_batch(self):
        from repro.codegen.wrapper import GenerationOptions
        from repro.core.platform import PerformancePlatform
        from repro.sim.config import core_by_name

        configs = [{"ADD": n % 3 + 1, "LD": n % 2, "REG_DIST": 2}
                   for n in range(5)]
        platform = PerformancePlatform(core_by_name("small"),
                                       instructions=2_000)
        options = GenerationOptions(loop_size=80)
        with ThreadBackend(jobs=2) as backend:
            batch = evaluate_configs(backend, platform, options, configs)
            streamed = list(evaluate_configs_stream(
                backend, platform, options, configs
            ))
        assert streamed == batch

    def test_evaluator_on_result_fires_for_every_index(self):
        space = KnobSpace([Knob("A", (1.0, 2.0, 3.0)), Knob("B", (5.0, 6.0))])

        def batch_fn(configs):
            return [{"y": c["A"]} for c in configs]

        def batch_stream_fn(configs):
            for c in configs:
                yield {"y": c["A"]}

        ev = Evaluator(space, lambda c: {"y": c["A"]}, batch_fn=batch_fn,
                       batch_stream_fn=batch_stream_fn)
        seen = {}
        batch = [np.array([0.0, 0.0]), np.array([1.0, 0.0]),
                 np.array([0.0, 0.0])]  # index 2 duplicates index 0
        results = ev.evaluate_batch(batch, on_result=seen.__setitem__)
        assert set(seen) == {0, 1, 2}
        assert [seen[i] for i in range(3)] == results
        assert ev.unique_evaluations == 2  # dedup still applies

    def test_evaluator_on_result_fires_immediately_for_cache_hits(self):
        space = KnobSpace([Knob("A", (1.0, 2.0))])
        calls = []
        ev = Evaluator(space, lambda c: calls.append(1) or {"y": c["A"]})
        first = ev.evaluate(np.array([0.0]))
        seen = {}
        results = ev.evaluate_batch([np.array([0.0])],
                                    on_result=seen.__setitem__)
        assert seen == {0: first}
        assert results == [first]
        assert len(calls) == 1  # cache hit: no new evaluation

    def test_on_result_with_cache_disabled(self):
        space = KnobSpace([Knob("A", (1.0, 2.0))])
        ev = Evaluator(space, lambda c: {"y": c["A"]}, cache=False)
        seen = {}
        results = ev.evaluate_batch(
            [np.array([0.0]), np.array([1.0])], on_result=seen.__setitem__
        )
        assert [seen[i] for i in range(2)] == results
        assert ev.unique_evaluations == 2
