"""Unit tests for the execution backends (ordering, selection, chunking)."""

import pytest

from repro.exec.backend import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    backend_for,
    chunk_evenly,
    default_jobs,
)


def _square(x):
    return x * x


class TestSerialBackend:
    def test_maps_in_order(self):
        assert SerialBackend().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialBackend().map(_square, []) == []

    def test_close_is_idempotent(self):
        backend = SerialBackend()
        backend.close()
        backend.close()


class TestThreadBackend:
    def test_maps_in_order(self):
        with ThreadBackend(jobs=4) as backend:
            assert backend.map(_square, list(range(8))) == [
                x * x for x in range(8)
            ]

    def test_unpicklable_work_is_fine(self):
        # The whole point of the thread backend: closures and platforms
        # that cannot pickle still fan out (no serialization boundary).
        offset = 10
        with ThreadBackend(jobs=2) as backend:
            assert backend.map(lambda x: x + offset, [1, 2, 3]) == [
                11, 12, 13
            ]

    def test_single_item_stays_in_caller(self):
        backend = ThreadBackend(jobs=2)
        assert backend.map(_square, [3]) == [9]
        assert backend._pool is None
        backend.close()

    def test_jobs_zero_means_all_cores(self):
        backend = ThreadBackend(jobs=0)
        assert backend.jobs == default_jobs()
        backend.close()

    def test_reusable_after_close(self):
        backend = ThreadBackend(jobs=2)
        assert backend.map(_square, [1, 2]) == [1, 4]
        backend.close()
        assert backend.map(_square, [2, 3]) == [4, 9]
        backend.close()

    def test_name_reports_workers(self):
        assert ThreadBackend(jobs=3).name == "thread[3]"


class TestProcessPoolBackend:
    def test_maps_in_order(self):
        with ProcessPoolBackend(jobs=2) as backend:
            assert backend.map(_square, list(range(8))) == [
                x * x for x in range(8)
            ]

    def test_single_item_stays_in_process(self):
        backend = ProcessPoolBackend(jobs=2)
        assert backend.map(_square, [3]) == [9]
        # No pool should have been spun up for a single item.
        assert backend._pool is None
        backend.close()

    def test_jobs_zero_means_all_cores(self):
        backend = ProcessPoolBackend(jobs=0)
        assert backend.jobs == default_jobs()
        backend.close()

    def test_reusable_after_close(self):
        backend = ProcessPoolBackend(jobs=2)
        assert backend.map(_square, [1, 2]) == [1, 4]
        backend.close()
        assert backend.map(_square, [2, 3]) == [4, 9]
        backend.close()


class TestBackendFor:
    def test_serial_by_name(self):
        assert isinstance(backend_for("serial", jobs=8), SerialBackend)

    def test_thread_by_name(self):
        backend = backend_for("thread", jobs=3)
        assert isinstance(backend, ThreadBackend)
        assert backend.jobs == 3
        backend.close()

    def test_process_by_name(self):
        backend = backend_for("process", jobs=3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == 3
        backend.close()

    def test_auto_serial_for_one_job(self):
        assert isinstance(backend_for("auto", jobs=1), SerialBackend)

    def test_auto_process_for_many_jobs(self):
        backend = backend_for("auto", jobs=4)
        assert isinstance(backend, ProcessPoolBackend)
        backend.close()

    def test_auto_process_for_all_cores(self):
        backend = backend_for("auto", jobs=0)
        assert isinstance(backend, ProcessPoolBackend)
        backend.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            backend_for("gpu", jobs=1)


class TestChunkEvenly:
    def test_concatenation_preserves_order(self):
        items = list(range(11))
        chunks = chunk_evenly(items, 3)
        assert [x for chunk in chunks for x in chunk] == items

    def test_no_empty_chunks(self):
        assert all(chunk_evenly([1, 2], 5))

    @pytest.mark.parametrize("n,chunks", [(10, 3), (7, 7), (1, 4), (12, 4)])
    def test_sizes_differ_by_at_most_one(self, n, chunks):
        sizes = [len(c) for c in chunk_evenly(list(range(n)), chunks)]
        assert max(sizes) - min(sizes) <= 1
