"""Unit tests for the execution backends (ordering, selection, chunking)."""

import pytest

from repro.exec.backend import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadBackend,
    backend_for,
    chunk_evenly,
    default_jobs,
)


def _square(x):
    return x * x


class TestSerialBackend:
    def test_maps_in_order(self):
        assert SerialBackend().map(_square, [1, 2, 3]) == [1, 4, 9]

    def test_empty(self):
        assert SerialBackend().map(_square, []) == []

    def test_close_is_idempotent(self):
        backend = SerialBackend()
        backend.close()
        backend.close()


class TestThreadBackend:
    def test_maps_in_order(self):
        with ThreadBackend(jobs=4) as backend:
            assert backend.map(_square, list(range(8))) == [
                x * x for x in range(8)
            ]

    def test_unpicklable_work_is_fine(self):
        # The whole point of the thread backend: closures and platforms
        # that cannot pickle still fan out (no serialization boundary).
        offset = 10
        with ThreadBackend(jobs=2) as backend:
            assert backend.map(lambda x: x + offset, [1, 2, 3]) == [
                11, 12, 13
            ]

    def test_single_item_stays_in_caller(self):
        backend = ThreadBackend(jobs=2)
        assert backend.map(_square, [3]) == [9]
        assert backend._pool is None
        backend.close()

    def test_jobs_zero_means_all_cores(self):
        backend = ThreadBackend(jobs=0)
        assert backend.jobs == default_jobs()
        backend.close()

    def test_reusable_after_close(self):
        backend = ThreadBackend(jobs=2)
        assert backend.map(_square, [1, 2]) == [1, 4]
        backend.close()
        assert backend.map(_square, [2, 3]) == [4, 9]
        backend.close()

    def test_name_reports_workers(self):
        assert ThreadBackend(jobs=3).name == "thread[3]"


class TestProcessPoolBackend:
    def test_maps_in_order(self):
        with ProcessPoolBackend(jobs=2) as backend:
            assert backend.map(_square, list(range(8))) == [
                x * x for x in range(8)
            ]

    def test_single_item_stays_in_process(self):
        backend = ProcessPoolBackend(jobs=2)
        assert backend.map(_square, [3]) == [9]
        # No pool should have been spun up for a single item.
        assert backend._pool is None
        backend.close()

    def test_jobs_zero_means_all_cores(self):
        backend = ProcessPoolBackend(jobs=0)
        assert backend.jobs == default_jobs()
        backend.close()

    def test_reusable_after_close(self):
        backend = ProcessPoolBackend(jobs=2)
        assert backend.map(_square, [1, 2]) == [1, 4]
        backend.close()
        assert backend.map(_square, [2, 3]) == [4, 9]
        backend.close()


class TestBackendFor:
    def test_serial_by_name(self):
        assert isinstance(backend_for("serial", jobs=8), SerialBackend)

    def test_thread_by_name(self):
        backend = backend_for("thread", jobs=3)
        assert isinstance(backend, ThreadBackend)
        assert backend.jobs == 3
        backend.close()

    def test_process_by_name(self):
        backend = backend_for("process", jobs=3)
        assert isinstance(backend, ProcessPoolBackend)
        assert backend.jobs == 3
        backend.close()

    def test_auto_serial_for_one_job(self):
        assert isinstance(backend_for("auto", jobs=1), SerialBackend)

    def test_auto_process_for_many_jobs(self):
        backend = backend_for("auto", jobs=4)
        assert isinstance(backend, ProcessPoolBackend)
        backend.close()

    def test_auto_process_for_all_cores(self):
        backend = backend_for("auto", jobs=0)
        assert isinstance(backend, ProcessPoolBackend)
        backend.close()

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="backend"):
            backend_for("gpu", jobs=1)


class TestChunkEvenly:
    def test_concatenation_preserves_order(self):
        items = list(range(11))
        chunks = chunk_evenly(items, 3)
        assert [x for chunk in chunks for x in chunk] == items

    def test_no_empty_chunks(self):
        assert all(chunk_evenly([1, 2], 5))

    @pytest.mark.parametrize("n,chunks", [(10, 3), (7, 7), (1, 4), (12, 4)])
    def test_sizes_differ_by_at_most_one(self, n, chunks):
        sizes = [len(c) for c in chunk_evenly(list(range(n)), chunks)]
        assert max(sizes) - min(sizes) <= 1


class TestChunkOnGroups:
    def _chunk(self, keys, chunks, min_chunk=1):
        from repro.exec.backend import chunk_on_groups

        items = list(range(len(keys)))
        return chunk_on_groups(items, chunks, keys, min_chunk=min_chunk)

    def test_concatenation_preserves_order(self):
        keys = ["a", "a", "b", "b", "b", "c", "d", "d"]
        chunks = self._chunk(keys, 3)
        assert [x for chunk in chunks for x in chunk] == list(range(8))

    def test_groups_never_split(self):
        keys = ["a"] * 3 + ["b"] * 4 + ["c"] * 2 + ["d"] * 5
        for n in range(1, 8):
            for chunk in self._chunk(keys, n):
                labels = [keys[i] for i in chunk]
                # Each group's items land contiguously in one chunk.
                for label in set(labels):
                    assert labels.count(label) == keys.count(label)

    def test_no_empty_chunks(self):
        keys = ["a", "b", "c"]
        assert all(self._chunk(keys, 10))

    def test_min_chunk_caps_chunk_count(self):
        keys = [str(i) for i in range(12)]
        assert len(self._chunk(keys, 12, min_chunk=4)) <= 3

    def test_distinct_keys_degenerate_to_even_chunks(self):
        from repro.exec.backend import chunk_evenly

        keys = [str(i) for i in range(10)]
        groups = self._chunk(keys, 3)
        even = chunk_evenly(list(range(10)), 3)
        assert [len(c) for c in groups] == [len(c) for c in even]

    def test_single_group_yields_single_chunk(self):
        assert self._chunk(["x"] * 9, 4) == [list(range(9))]

    def test_empty_input(self):
        assert self._chunk([], 3) == []

    def test_length_mismatch_rejected(self):
        from repro.exec.backend import chunk_on_groups

        with pytest.raises(ValueError, match="keys"):
            chunk_on_groups([1, 2], 2, ["a"])

    def test_chunk_hint_respects_batch_group_min(self):
        backend = SerialBackend(batch_group_min=4)
        assert backend.chunk_hint(3) == 1
        backend = ThreadBackend(jobs=8, batch_group_min=4)
        try:
            assert backend.chunk_hint(8) == 2
            assert backend.chunk_hint(64) == 8
        finally:
            backend.close()

    def test_backend_for_threads_batch_group_min(self):
        backend = backend_for("thread", jobs=4, batch_group_min=6)
        try:
            assert backend.batch_group_min == 6
        finally:
            backend.close()
