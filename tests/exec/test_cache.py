"""Unit tests for the persistent on-disk result cache."""

from repro.exec.cache import DiskResultCache

KEY = (("ADD", 4.0), ("B_PATTERN", 0.3))
METRICS = {"ipc": 1.25, "branch": 0.1}


class TestDiskResultCache:
    def test_round_trip(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.put("perf:large|i=8000", KEY, METRICS)
        assert cache.get("perf:large|i=8000", KEY) == METRICS

    def test_miss_returns_none(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        assert cache.get("ctx", KEY) is None

    def test_survives_process_boundary(self, tmp_path):
        DiskResultCache(tmp_path).put("ctx", KEY, METRICS)
        fresh = DiskResultCache(tmp_path)
        assert fresh.get("ctx", KEY) == METRICS

    def test_context_isolates_entries(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.put("perf:large|i=8000", KEY, METRICS)
        assert cache.get("perf:small|i=8000", KEY) is None
        assert cache.get("perf:large|i=4000", KEY) is None

    def test_different_configs_do_not_alias(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        other_key = (("ADD", 5.0), ("B_PATTERN", 0.3))
        cache.put("ctx", KEY, METRICS)
        cache.put("ctx", other_key, {"ipc": 9.0})
        assert cache.get("ctx", KEY) == METRICS
        assert cache.get("ctx", other_key) == {"ipc": 9.0}
        assert len(cache) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.put("ctx", KEY, METRICS)
        digest = cache.digest("ctx", KEY)
        (tmp_path / f"{digest}.json").write_text("{not json")
        assert DiskResultCache(tmp_path).get("ctx", KEY) is None

    def test_returns_a_copy(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.put("ctx", KEY, METRICS)
        first = cache.get("ctx", KEY)
        first["ipc"] = -1.0
        assert cache.get("ctx", KEY)["ipc"] == 1.25

    def test_hit_and_miss_counters(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.get("ctx", KEY)
        cache.put("ctx", KEY, METRICS)
        cache.get("ctx", KEY)
        assert cache.misses == 1
        assert cache.hits == 1


def _key(i):
    return (("ADD", float(i)),)


class TestEviction:
    def test_size_cap_enforced(self, tmp_path):
        cache = DiskResultCache(tmp_path, max_entries=4)
        for i in range(10):
            cache.put("ctx", _key(i), {"ipc": float(i)})
        assert len(cache) <= 4
        assert cache.evictions >= 6

    def test_oldest_entries_evicted_first(self, tmp_path):
        import os
        import time

        seed = DiskResultCache(tmp_path)
        now = time.time()
        for i in range(3):
            seed.put("ctx", _key(i), {"ipc": float(i)})
            # Backdate: entry 0 is the least recently used.
            path = seed._path(seed.digest("ctx", _key(i)))
            stamp = now - 300 + 100 * i
            os.utime(path, (stamp, stamp))
        cache = DiskResultCache(tmp_path, max_entries=2)
        assert cache.compact() == 1
        fresh = DiskResultCache(tmp_path)
        assert fresh.get("ctx", _key(0)) is None
        assert fresh.get("ctx", _key(2)) == {"ipc": 2.0}

    def test_evicted_entries_forgotten_in_memory_too(self, tmp_path):
        import os
        import time

        cache = DiskResultCache(tmp_path, max_entries=1)
        cache.put("ctx", _key(0), {"ipc": 0.0})
        path = cache._path(cache.digest("ctx", _key(0)))
        old = time.time() - 300
        os.utime(path, (old, old))
        # The next put compacts and must evict entry 0 everywhere —
        # including the in-process promotion map.
        cache.put("ctx", _key(1), {"ipc": 1.0})
        assert cache.get("ctx", _key(0)) is None
        assert cache.get("ctx", _key(1)) == {"ipc": 1.0}

    def test_memory_hits_refresh_recency(self, tmp_path):
        import os
        import time

        cache = DiskResultCache(tmp_path, max_entries=1)
        cache.put("ctx", _key(0), {"ipc": 0.0})
        path = cache._path(cache.digest("ctx", _key(0)))
        old = time.time() - 300
        os.utime(path, (old, old))
        # A memory-served hit must re-touch the file, or compaction
        # would evict the hottest entry first.
        cache.get("ctx", _key(0))
        assert path.stat().st_mtime > old + 100

    def test_unbounded_by_default(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        for i in range(80):
            cache.put("ctx", _key(i), {"ipc": float(i)})
        assert len(cache) == 80
        assert cache.compact() == 0

    def test_invalid_cap_rejected(self, tmp_path):
        import pytest

        with pytest.raises(ValueError, match="max_entries"):
            DiskResultCache(tmp_path, max_entries=0)


class TestSchemaStamp:
    def test_entries_record_the_schema(self, tmp_path):
        import json

        cache = DiskResultCache(tmp_path, schema="trace-v1")
        cache.put("ctx", KEY, METRICS)
        path = cache._path(cache.digest("ctx", KEY))
        assert json.loads(path.read_text())["schema"] == "trace-v1"

    def test_different_schema_is_a_miss(self, tmp_path):
        DiskResultCache(tmp_path, schema="trace-v1").put("ctx", KEY, METRICS)
        stale = DiskResultCache(tmp_path, schema="trace-v2")
        assert stale.get("ctx", KEY) is None

    def test_unstamped_entries_survive_schema_introduction(self, tmp_path):
        # Pre-schema caches (including every entry written before this
        # refactor) keep hitting: the pipeline is bit-identical.
        DiskResultCache(tmp_path).put("ctx", KEY, METRICS)
        upgraded = DiskResultCache(tmp_path, schema="trace-v1")
        assert upgraded.get("ctx", KEY) == METRICS

    def test_same_schema_hits(self, tmp_path):
        DiskResultCache(tmp_path, schema="trace-v1").put("ctx", KEY, METRICS)
        fresh = DiskResultCache(tmp_path, schema="trace-v1")
        assert fresh.get("ctx", KEY) == METRICS


class TestGetMany:
    def _keys(self, n):
        return [(("ADD", float(i)), ("B_PATTERN", 0.3)) for i in range(n)]

    def test_matches_sequential_gets(self, tmp_path):
        keys = self._keys(6)
        writer = DiskResultCache(tmp_path)
        for i in (0, 2, 5):
            writer.put("ctx", keys[i], {"ipc": float(i)})
        batch_cache = DiskResultCache(tmp_path)
        batch = batch_cache.get_many("ctx", keys)
        serial_cache = DiskResultCache(tmp_path)
        serial = [serial_cache.get("ctx", key) for key in keys]
        assert batch == serial
        assert batch_cache.hits == serial_cache.hits == 3
        assert batch_cache.misses == serial_cache.misses == 3

    def test_memory_promotion_serves_repeat_probes(self, tmp_path):
        key = self._keys(1)[0]
        DiskResultCache(tmp_path).put("ctx", key, METRICS)
        cache = DiskResultCache(tmp_path)
        # Duplicate keys in one batch: first promotes from disk, the
        # rest hit memory — counters identical to sequential gets.
        results = cache.get_many("ctx", [key, key, key])
        assert results == [METRICS] * 3
        assert cache.hits == 3
        assert cache.misses == 0

    def test_empty_batch(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        assert cache.get_many("ctx", []) == []
        assert cache.misses == 0

    def test_stale_schema_is_a_miss(self, tmp_path):
        keys = self._keys(2)
        DiskResultCache(tmp_path, schema="v1").put("ctx", keys[0], METRICS)
        DiskResultCache(tmp_path, schema="v2").put("ctx", keys[1], METRICS)
        cache = DiskResultCache(tmp_path, schema="v2")
        assert cache.get_many("ctx", keys) == [None, METRICS]

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        keys = self._keys(2)
        writer = DiskResultCache(tmp_path)
        writer.put("ctx", keys[0], METRICS)
        writer.put("ctx", keys[1], {"ipc": 2.0})
        digest = writer.digest("ctx", keys[0])
        (tmp_path / f"{digest}.json").write_text("{not json")
        cache = DiskResultCache(tmp_path)
        assert cache.get_many("ctx", keys) == [None, {"ipc": 2.0}]

    def test_results_are_copies(self, tmp_path):
        key = self._keys(1)[0]
        cache = DiskResultCache(tmp_path)
        cache.put("ctx", key, METRICS)
        [first] = cache.get_many("ctx", [key])
        first["ipc"] = -1.0
        assert cache.get("ctx", key)["ipc"] == 1.25
