"""Unit tests for the persistent on-disk result cache."""

from repro.exec.cache import DiskResultCache

KEY = (("ADD", 4.0), ("B_PATTERN", 0.3))
METRICS = {"ipc": 1.25, "branch": 0.1}


class TestDiskResultCache:
    def test_round_trip(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.put("perf:large|i=8000", KEY, METRICS)
        assert cache.get("perf:large|i=8000", KEY) == METRICS

    def test_miss_returns_none(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        assert cache.get("ctx", KEY) is None

    def test_survives_process_boundary(self, tmp_path):
        DiskResultCache(tmp_path).put("ctx", KEY, METRICS)
        fresh = DiskResultCache(tmp_path)
        assert fresh.get("ctx", KEY) == METRICS

    def test_context_isolates_entries(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.put("perf:large|i=8000", KEY, METRICS)
        assert cache.get("perf:small|i=8000", KEY) is None
        assert cache.get("perf:large|i=4000", KEY) is None

    def test_different_configs_do_not_alias(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        other_key = (("ADD", 5.0), ("B_PATTERN", 0.3))
        cache.put("ctx", KEY, METRICS)
        cache.put("ctx", other_key, {"ipc": 9.0})
        assert cache.get("ctx", KEY) == METRICS
        assert cache.get("ctx", other_key) == {"ipc": 9.0}
        assert len(cache) == 2

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.put("ctx", KEY, METRICS)
        digest = cache.digest("ctx", KEY)
        (tmp_path / f"{digest}.json").write_text("{not json")
        assert DiskResultCache(tmp_path).get("ctx", KEY) is None

    def test_returns_a_copy(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.put("ctx", KEY, METRICS)
        first = cache.get("ctx", KEY)
        first["ipc"] = -1.0
        assert cache.get("ctx", KEY)["ipc"] == 1.25

    def test_hit_and_miss_counters(self, tmp_path):
        cache = DiskResultCache(tmp_path)
        cache.get("ctx", KEY)
        cache.put("ctx", KEY, METRICS)
        cache.get("ctx", KEY)
        assert cache.misses == 1
        assert cache.hits == 1
