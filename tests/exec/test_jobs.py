"""Worker-job tests: generation + simulation inside backend workers."""

from repro.codegen.wrapper import GenerationOptions
from repro.core.platform import PerformancePlatform
from repro.exec.backend import ProcessPoolBackend, SerialBackend
from repro.exec.jobs import evaluate_configs
from repro.sim.config import core_by_name

CONFIGS = [
    {"ADD": 4, "BEQ": 1, "REG_DIST": 2, "B_PATTERN": 0.1},
    {"ADD": 1, "LD": 4, "SD": 2, "MEM_SIZE": 16, "REG_DIST": 4},
    {"MUL": 3, "FADDD": 2, "BNE": 1, "REG_DIST": 6},
]


def _platform():
    return PerformancePlatform(core_by_name("small"), instructions=2_000)


class TestEvaluateConfigs:
    def test_empty_batch(self):
        assert evaluate_configs(
            SerialBackend(), _platform(), GenerationOptions(loop_size=80), []
        ) == []

    def test_serial_results_in_order(self):
        metrics = evaluate_configs(
            SerialBackend(), _platform(),
            GenerationOptions(loop_size=80), CONFIGS,
        )
        assert len(metrics) == len(CONFIGS)
        assert all(m["ipc"] > 0 for m in metrics)

    def test_process_pool_matches_serial_exactly(self):
        platform = _platform()
        options = GenerationOptions(loop_size=80)
        serial = evaluate_configs(SerialBackend(), platform, options, CONFIGS)
        with ProcessPoolBackend(jobs=2) as backend:
            parallel = evaluate_configs(backend, platform, options, CONFIGS)
        assert parallel == serial

    def test_more_configs_than_workers(self):
        platform = _platform()
        options = GenerationOptions(loop_size=60)
        configs = [{"ADD": n % 5 + 1, "REG_DIST": 2} for n in range(9)]
        with ProcessPoolBackend(jobs=3) as backend:
            parallel = evaluate_configs(backend, platform, options, configs)
        serial = evaluate_configs(SerialBackend(), platform, options, configs)
        assert parallel == serial
