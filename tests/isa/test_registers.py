"""Unit tests for the register file substrate."""

import pytest

from repro.isa.registers import Register, RegisterFile, RegisterKind, ZERO


class TestRegister:
    def test_int_register_name(self):
        assert Register(RegisterKind.INT, 5).name == "x5"

    def test_fp_register_name(self):
        assert Register(RegisterKind.FP, 12).name == "f12"

    def test_zero_register(self):
        assert ZERO.name == "x0"

    def test_registers_are_hashable_and_equal_by_value(self):
        a = Register(RegisterKind.INT, 3)
        b = Register(RegisterKind.INT, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1

    def test_ordering_is_stable(self):
        regs = sorted(
            [Register(RegisterKind.FP, 1), Register(RegisterKind.FP, 0)]
        )
        assert [r.index for r in regs] == [0, 1]


class TestParse:
    @pytest.mark.parametrize(
        "name,kind,index",
        [("x0", RegisterKind.INT, 0), ("x31", RegisterKind.INT, 31),
         ("f7", RegisterKind.FP, 7), (" X12 ", RegisterKind.INT, 12)],
    )
    def test_valid_names(self, name, kind, index):
        reg = RegisterFile.parse(name)
        assert reg.kind is kind
        assert reg.index == index

    @pytest.mark.parametrize("bad", ["", "y3", "x", "x32", "f-1", "xx1", "f99"])
    def test_invalid_names_raise(self, bad):
        with pytest.raises(ValueError):
            RegisterFile.parse(bad)


class TestRegisterFile:
    def test_all_registers_count(self):
        assert len(RegisterFile().all_registers()) == 64

    def test_allocatable_int_excludes_x0(self):
        pool = RegisterFile().allocatable(RegisterKind.INT)
        assert Register(RegisterKind.INT, 0) not in pool
        assert len(pool) == 31

    def test_allocatable_fp_includes_f0(self):
        pool = RegisterFile().allocatable(RegisterKind.FP)
        assert Register(RegisterKind.FP, 0) in pool
        assert len(pool) == 32

    def test_reserve_removes_from_pool(self):
        rf = RegisterFile()
        reg = Register(RegisterKind.INT, 5)
        rf.reserve(reg)
        assert rf.is_reserved(reg)
        assert reg not in rf.allocatable(RegisterKind.INT)

    def test_release_returns_to_pool(self):
        rf = RegisterFile()
        reg = Register(RegisterKind.INT, 5)
        rf.reserve(reg)
        rf.release(reg)
        assert not rf.is_reserved(reg)
        assert reg in rf.allocatable(RegisterKind.INT)

    def test_release_unreserved_is_noop(self):
        rf = RegisterFile()
        rf.release(Register(RegisterKind.INT, 9))  # must not raise

    def test_reserved_view_is_frozen(self):
        rf = RegisterFile()
        rf.reserve(Register(RegisterKind.FP, 2))
        view = rf.reserved
        assert isinstance(view, frozenset)
        assert Register(RegisterKind.FP, 2) in view

    def test_reservations_do_not_leak_across_instances(self):
        a = RegisterFile()
        a.reserve(Register(RegisterKind.INT, 1))
        b = RegisterFile()
        assert not b.is_reserved(Register(RegisterKind.INT, 1))
