"""Unit tests for the functional ISA interpreter."""

import pytest

from repro.codegen import generate_test_case
from repro.codegen.wrapper import GenerationOptions
from repro.isa.interpreter import Interpreter
from repro.isa.instructions import InstrClass


def _program(loop_size=120, **overrides):
    knobs = dict(ADD=4, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1, LD=2, SD=1,
                 REG_DIST=3, MEM_SIZE=16, MEM_STRIDE=16,
                 MEM_TEMP1=2, MEM_TEMP2=2, B_PATTERN=0.5)
    knobs.update(overrides)
    return generate_test_case(knobs, GenerationOptions(loop_size=loop_size))


class TestExecution:
    def test_executes_exact_instruction_count(self):
        program = _program(100)
        result = Interpreter(program).run(iterations=7)
        assert result.instructions == 700
        assert result.iterations == 7

    def test_class_counts_match_static_distribution(self):
        program = _program(100)
        result = Interpreter(program).run(iterations=3)
        static = program.class_counts()
        for iclass, count in static.items():
            assert result.class_counts[iclass] == count * 3

    def test_memory_traffic_counted(self):
        program = _program(100)
        result = Interpreter(program).run(iterations=4)
        mem = program.memory_instructions()
        loads = sum(1 for i in mem if i.iclass is InstrClass.LOAD)
        stores = len(mem) - loads
        assert result.loads == loads * 4
        assert result.stores == stores * 4

    def test_stored_values_are_loaded_back(self):
        program = _program(100, MEM_TEMP1=4, MEM_TEMP2=4)
        interp = Interpreter(program)
        interp.run(iterations=10)
        assert interp.memory, "stores must populate memory"

    def test_taken_branch_rate_tracks_pattern(self):
        # Fully deterministic pattern (T, T, F, T): 75% taken.
        program = _program(200, B_PATTERN=0.0)
        result = Interpreter(program).run(iterations=40)
        branches = result.class_counts[InstrClass.BRANCH]
        rate = result.taken_branches / branches
        assert rate == pytest.approx(0.75, abs=0.05)

    def test_x0_stays_zero(self):
        program = _program(100)
        interp = Interpreter(program)
        interp.run(iterations=5)
        assert interp.int_regs[0] == 0

    def test_fp_registers_remain_finite(self):
        program = _program(150, FMULD=6, FADDD=4, ADD=1)
        interp = Interpreter(program)
        result = interp.run(iterations=200)
        for name, value in result.register_file.items():
            if name.startswith("f"):
                assert abs(value) < 1e9
                assert value == value  # not NaN

    def test_div_heavy_program_never_traps(self):
        program = generate_test_case(
            dict(DIV=5, ADD=1, REG_DIST=2, B_PATTERN=0.0),
            GenerationOptions(loop_size=80),
        )
        Interpreter(program).run(iterations=20)  # must not raise

    def test_zero_iterations_rejected(self):
        with pytest.raises(ValueError):
            Interpreter(_program(50)).run(iterations=0)

    def test_deterministic(self):
        a = Interpreter(_program(100)).run(iterations=5)
        b = Interpreter(_program(100)).run(iterations=5)
        assert a.register_file == b.register_file
        assert a.taken_branches == b.taken_branches


class TestNativePlatform:
    def test_metrics_shape(self):
        from repro.core.platform import NativeExecutionPlatform

        metrics = NativeExecutionPlatform(iterations=10).evaluate(_program(100))
        for key in ("integer", "float", "load", "store", "branch",
                    "loads_per_instr", "taken_branch_rate", "host_mips"):
            assert key in metrics
        assert metrics["host_mips"] > 0

    def test_distribution_matches_program(self):
        from repro.core.platform import NativeExecutionPlatform

        program = _program(100)
        metrics = NativeExecutionPlatform(iterations=5).evaluate(program)
        fractions = program.group_fractions()
        for group, fraction in fractions.items():
            assert metrics[group] == pytest.approx(fraction, abs=1e-9)
