"""Unit tests for the program representation and dynamic attachments."""

import numpy as np
import pytest

from repro.isa.instructions import instruction_def
from repro.isa.program import BranchBehavior, Instruction, MemoryAccess, Program
from repro.isa.registers import Register, RegisterKind


def _reg(i, kind=RegisterKind.INT):
    return Register(kind, i)


def _add(dst=1, srcs=(2, 3)):
    return Instruction(
        idef=instruction_def("ADD"),
        dests=[_reg(dst)],
        srcs=[_reg(s) for s in srcs],
    )


class TestMemoryAccess:
    def test_pure_stream_addresses(self):
        ma = MemoryAccess(stream_id=1, base=0, footprint=1024, stride=64)
        addrs = ma.addresses(8)
        assert list(addrs[:4]) == [0, 64, 128, 192]

    def test_footprint_wraps(self):
        ma = MemoryAccess(stream_id=1, base=0, footprint=128, stride=64)
        addrs = ma.addresses(4)
        assert list(addrs) == [0, 64, 0, 64]

    def test_addresses_stay_inside_footprint(self):
        ma = MemoryAccess(stream_id=1, base=1000, footprint=256, stride=48)
        addrs = ma.addresses(50)
        assert (addrs >= 1000).all()
        assert (addrs < 1000 + 256).all()

    def test_temporal_reuse_window(self):
        # 2 distinct addresses swept 3 times each window.
        ma = MemoryAccess(
            stream_id=1, base=0, footprint=4096, stride=64,
            reuse_count=2, reuse_period=3,
        )
        idx = ma.indices(6)
        assert list(idx) == [0, 1, 0, 1, 0, 1]
        idx_next = ma.indices(12)[6:]
        assert list(idx_next) == [2, 3, 2, 3, 2, 3]

    def test_step_advances_collectively(self):
        ma = MemoryAccess(
            stream_id=1, base=0, footprint=1 << 20, stride=64, step=10, phase=3
        )
        idx = ma.indices(3)
        assert list(idx) == [3, 13, 23]

    @pytest.mark.parametrize(
        "kwargs",
        [dict(footprint=0), dict(stride=0), dict(reuse_count=0),
         dict(reuse_period=0), dict(step=0)],
    )
    def test_invalid_parameters_raise(self, kwargs):
        base = dict(stream_id=1, base=0, footprint=64, stride=8)
        base.update(kwargs)
        with pytest.raises(ValueError):
            MemoryAccess(**base)


class TestBranchBehavior:
    def test_pure_pattern_repeats(self):
        bb = BranchBehavior(pattern=(True, False), random_ratio=0.0)
        assert list(bb.outcomes(5)) == [True, False, True, False, True]

    def test_randomization_ratio_flips_roughly_that_many(self):
        bb = BranchBehavior(pattern=(True,), random_ratio=0.5, seed=7)
        outcomes = bb.outcomes(4000)
        # Half the slots are randomized at 50% bias: ~25% not-taken.
        not_taken = float(np.mean(~outcomes))
        assert 0.18 < not_taken < 0.32

    def test_outcomes_deterministic_for_seed(self):
        a = BranchBehavior(random_ratio=0.7, seed=3).outcomes(100)
        b = BranchBehavior(random_ratio=0.7, seed=3).outcomes(100)
        assert (a == b).all()

    def test_empty_pattern_raises(self):
        with pytest.raises(ValueError):
            BranchBehavior(pattern=())

    def test_bad_ratio_raises(self):
        with pytest.raises(ValueError):
            BranchBehavior(random_ratio=1.5)


class TestInstructionValidation:
    def test_valid_add(self):
        _add().validate()

    def test_wrong_dest_count(self):
        instr = _add()
        instr.dests = []
        with pytest.raises(ValueError, match="dests"):
            instr.validate()

    def test_wrong_src_count(self):
        instr = _add()
        instr.srcs = [_reg(2)]
        with pytest.raises(ValueError, match="srcs"):
            instr.validate()

    def test_memory_instruction_requires_stream(self):
        load = Instruction(
            idef=instruction_def("LD"), dests=[_reg(1)], srcs=[_reg(2)]
        )
        with pytest.raises(ValueError, match="lacks a stream"):
            load.validate()

    def test_non_memory_instruction_rejects_stream(self):
        instr = _add()
        instr.memory = MemoryAccess(stream_id=1, base=0, footprint=64, stride=8)
        with pytest.raises(ValueError, match="has a stream"):
            instr.validate()

    def test_branch_requires_behavior(self):
        br = Instruction(
            idef=instruction_def("BEQ"), srcs=[_reg(1), _reg(2)]
        )
        with pytest.raises(ValueError, match="lacks a behaviour"):
            br.validate()


class TestProgram:
    def test_empty_program_invalid(self):
        with pytest.raises(ValueError, match="empty"):
            Program().validate()

    def test_len_and_iter(self):
        p = Program(body=[_add(), _add()])
        assert len(p) == 2
        assert all(i.mnemonic == "ADD" for i in p)

    def test_class_counts(self):
        p = Program(body=[_add(), _add(), _add(4, (5, 6))])
        counts = p.class_counts()
        assert sum(counts.values()) == 3

    def test_group_fractions_sum_to_one(self):
        p = Program(body=[_add() for _ in range(10)])
        fractions = p.group_fractions()
        assert abs(sum(fractions.values()) - 1.0) < 1e-12
        assert fractions["integer"] == 1.0

    def test_memory_and_branch_selectors(self):
        br = Instruction(
            idef=instruction_def("BNE"),
            srcs=[_reg(1), _reg(2)],
            branch=BranchBehavior(),
        )
        p = Program(body=[_add(), br])
        assert p.memory_instructions() == []
        assert p.branch_instructions() == [br]
