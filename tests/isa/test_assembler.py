"""Unit tests for the assembly writer."""

from repro.codegen import generate_test_case
from repro.isa.assembler import instruction_to_asm, program_to_asm
from repro.isa.instructions import instruction_def
from repro.isa.program import BranchBehavior, Instruction, MemoryAccess
from repro.isa.registers import Register, RegisterKind


def _knobs(**overrides):
    base = dict(ADD=4, MUL=1, BEQ=1, LD=2, SD=1, REG_DIST=3,
                MEM_SIZE=64, B_PATTERN=0.2)
    base.update(overrides)
    return base


class TestInstructionToAsm:
    def test_alu_format(self):
        instr = Instruction(
            idef=instruction_def("ADD"),
            dests=[Register(RegisterKind.INT, 1)],
            srcs=[Register(RegisterKind.INT, 2), Register(RegisterKind.INT, 3)],
        )
        assert instruction_to_asm(instr) == "add x1, x2, x3"

    def test_load_uses_base_offset_form(self):
        instr = Instruction(
            idef=instruction_def("LD"),
            dests=[Register(RegisterKind.INT, 6)],
            srcs=[Register(RegisterKind.INT, 2)],
            immediate=16,
            memory=MemoryAccess(stream_id=1, base=0, footprint=64, stride=8),
        )
        assert instruction_to_asm(instr) == "ld x6, 16(x2)"

    def test_branch_names_loop_target(self):
        instr = Instruction(
            idef=instruction_def("BEQ"),
            srcs=[Register(RegisterKind.INT, 1), Register(RegisterKind.INT, 2)],
            branch=BranchBehavior(),
        )
        text = instruction_to_asm(instr)
        assert text.startswith("beq x1, x2")

    def test_comment_is_carried(self):
        instr = Instruction(
            idef=instruction_def("NOP"), comment="filler"
        )
        assert "# filler" in instruction_to_asm(instr)


class TestProgramToAsm:
    def test_full_program_shape(self):
        program = generate_test_case(_knobs())
        text = program_to_asm(program)
        lines = text.splitlines()
        assert lines[0].strip() == ".text"
        assert "loop:" in text
        assert lines[-1].startswith("    j loop")
        # One line per instruction plus the wrapper lines.
        assert len(lines) == len(program) + 5

    def test_every_instruction_has_its_pc_annotated(self):
        program = generate_test_case(_knobs())
        text = program_to_asm(program)
        assert text.count("/* 0x") == len(program)

    def test_asm_is_deterministic(self):
        a = program_to_asm(generate_test_case(_knobs()))
        b = program_to_asm(generate_test_case(_knobs()))
        assert a == b
