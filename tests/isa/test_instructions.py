"""Unit tests for instruction definitions and classes."""

import pytest

from repro.isa.instructions import (
    CLASS_GROUPS,
    INSTRUCTION_SET,
    InstrClass,
    class_of_group,
    defs_by_class,
    instruction_def,
)
from repro.isa.registers import RegisterKind


class TestLookup:
    def test_lookup_is_case_insensitive(self):
        assert instruction_def("add") is instruction_def("ADD")

    def test_unknown_mnemonic_raises(self):
        with pytest.raises(KeyError, match="unknown mnemonic"):
            instruction_def("VADD")

    def test_fp_ops_use_fp_registers(self):
        assert instruction_def("FMUL.D").operand_kind is RegisterKind.FP

    def test_branch_has_no_destination(self):
        d = instruction_def("BEQ")
        assert d.num_dst == 0
        assert d.num_src == 2
        assert d.is_branch

    def test_load_shape(self):
        d = instruction_def("LD")
        assert d.num_dst == 1
        assert d.num_src == 1
        assert d.mem_bytes == 8
        assert d.is_memory

    def test_store_shape(self):
        d = instruction_def("SW")
        assert d.num_dst == 0
        assert d.num_src == 2
        assert d.mem_bytes == 4


class TestClasses:
    def test_memory_classes(self):
        assert InstrClass.LOAD.is_memory
        assert InstrClass.STORE.is_memory
        assert not InstrClass.BRANCH.is_memory

    def test_fp_classes(self):
        assert InstrClass.FP_ADD.is_fp
        assert InstrClass.FP_DIV.is_fp
        assert not InstrClass.INT_MUL.is_fp

    def test_groups_cover_table3_columns(self):
        assert set(CLASS_GROUPS) == {"integer", "float", "branch", "load", "store"}

    def test_class_of_group(self):
        assert class_of_group(InstrClass.INT_MUL) == "integer"
        assert class_of_group(InstrClass.FP_DIV) == "float"
        assert class_of_group(InstrClass.NOP) == "other"

    def test_defs_by_class_nonempty_for_every_group_class(self):
        for classes in CLASS_GROUPS.values():
            for iclass in classes:
                assert defs_by_class(iclass), f"no defs for {iclass}"

    def test_every_def_has_positive_latency(self):
        for d in INSTRUCTION_SET.values():
            assert d.latency >= 1

    def test_divides_are_slowest_in_their_files(self):
        assert (
            instruction_def("DIV").latency > instruction_def("MUL").latency
        )
        assert (
            instruction_def("FDIV.D").latency > instruction_def("FMUL.D").latency
        )
