"""Property-based tests for the ISA substrate invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.isa.program import BranchBehavior, MemoryAccess

footprints = st.integers(min_value=64, max_value=1 << 21)
strides = st.integers(min_value=1, max_value=512)
reuse = st.integers(min_value=1, max_value=64)
steps = st.integers(min_value=1, max_value=300)
iterations = st.integers(min_value=1, max_value=400)


class TestMemoryAccessProperties:
    @given(footprints, strides, reuse, reuse, steps, iterations)
    @settings(max_examples=60, deadline=None)
    def test_addresses_always_within_footprint(
        self, footprint, stride, reuse_count, reuse_period, step, iters
    ):
        ma = MemoryAccess(
            stream_id=1, base=4096, footprint=footprint, stride=stride,
            reuse_count=reuse_count, reuse_period=reuse_period, step=step,
        )
        addrs = ma.addresses(iters)
        assert (addrs >= 4096).all()
        assert (addrs < 4096 + footprint).all()

    @given(footprints, strides, reuse, reuse, iterations)
    @settings(max_examples=60, deadline=None)
    def test_indices_are_monotone_nondecreasing_over_windows(
        self, footprint, stride, reuse_count, reuse_period, iters
    ):
        ma = MemoryAccess(
            stream_id=1, base=0, footprint=footprint, stride=stride,
            reuse_count=reuse_count, reuse_period=reuse_period,
        )
        idx = ma.indices(iters)
        window = reuse_count * reuse_period
        # Window start indices never decrease.
        starts = idx[::window] if window <= iters else idx[:1]
        assert (np.diff(starts) >= 0).all()

    @given(iterations)
    @settings(max_examples=30, deadline=None)
    def test_reuse_period_one_is_pure_stream(self, iters):
        ma = MemoryAccess(stream_id=1, base=0, footprint=1 << 22, stride=8,
                          reuse_period=1)
        assert list(ma.indices(iters)) == list(range(iters))


class TestBranchBehaviorProperties:
    @given(
        st.floats(min_value=0.0, max_value=1.0),
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=1, max_value=2000),
    )
    @settings(max_examples=60, deadline=None)
    def test_outcomes_shape_and_dtype(self, ratio, seed, n):
        bb = BranchBehavior(random_ratio=ratio, seed=seed)
        out = bb.outcomes(n)
        assert out.shape == (n,)
        assert out.dtype == bool

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=30, deadline=None)
    def test_zero_ratio_matches_pattern_exactly(self, seed):
        pattern = (True, True, False)
        bb = BranchBehavior(pattern=pattern, random_ratio=0.0, seed=seed)
        out = bb.outcomes(9)
        assert list(out) == [True, True, False] * 3

    @given(
        st.floats(min_value=0.1, max_value=0.9),
        st.floats(min_value=0.1, max_value=0.9),
    )
    @settings(max_examples=30, deadline=None)
    def test_higher_ratio_diverges_more_from_pattern(self, low, high):
        if low > high:
            low, high = high, low
        if high - low < 0.2:
            high = min(0.9, low + 0.3)
        pattern = (True,)
        n = 5000
        out_low = BranchBehavior(pattern=pattern, random_ratio=low,
                                 seed=1).outcomes(n)
        out_high = BranchBehavior(pattern=pattern, random_ratio=high,
                                  seed=1).outcomes(n)
        flips_low = int(np.sum(~out_low))
        flips_high = int(np.sum(~out_high))
        assert flips_high >= flips_low
