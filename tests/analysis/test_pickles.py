"""Fixture suite for the ``pickle-boundary`` checker."""

from .conftest import rules_of

RULES = ["pickle-boundary"]


def test_module_level_function_passes(lint):
    report = lint({"a.py": """\
        def work(item):
            return item * 2

        def run(backend, items):
            return backend.map(work, items)
        """}, rules=RULES)
    assert report.ok


def test_partial_of_module_function_passes(lint):
    report = lint({"a.py": """\
        from functools import partial

        def work(options, item):
            return (options, item)

        def run(backend, options, items):
            return backend.map(partial(work, options), items)
        """}, rules=RULES)
    assert report.ok


def test_lambda_fires(lint):
    report = lint({"a.py": """\
        def run(backend, items):
            return backend.map(lambda item: item * 2, items)
        """}, rules=RULES)
    assert rules_of(report) == {"pickle-boundary"}
    assert "lambda" in report.findings[0].message


def test_lambda_inside_partial_fires(lint):
    report = lint({"a.py": """\
        from functools import partial

        def run(backend, items):
            return backend.map(partial(lambda x, i: x + i, 1), items)
        """}, rules=RULES)
    assert not report.ok


def test_nested_def_fires(lint):
    report = lint({"a.py": """\
        def run(backend, scale, items):
            def work(item):
                return item * scale
            return backend.map_stream(work, items)
        """}, rules=RULES)
    assert not report.ok
    assert "nested" in report.findings[0].message


def test_process_target_lambda_fires(lint):
    report = lint({"a.py": """\
        import multiprocessing

        def spawn():
            return multiprocessing.Process(target=lambda: None)
        """}, rules=RULES)
    assert not report.ok


def test_unresolvable_name_passes(lint):
    # A parameter could be anything; the checker stays conservative.
    report = lint({"a.py": """\
        def run(backend, fn, items):
            return backend.submit(fn, items)
        """}, rules=RULES)
    assert report.ok


def test_thread_target_closure_is_exempt(lint):
    # threading shares the address space: closures never pickle there.
    report = lint({"a.py": """\
        import threading

        def run(state):
            def tick():
                state.append(1)
            return threading.Thread(target=tick)
        """}, rules=RULES)
    assert report.ok
