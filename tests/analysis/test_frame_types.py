"""Fixture suite for the ``frame-type`` checker."""

RULES = ["frame-type"]

#: A fixture protocol module: two constants, both declared.
PROTOCOL = """\
MSG_PING = "ping"
MSG_PONG = "pong"

FRAME_TYPES = frozenset({MSG_PING, MSG_PONG})
"""


def test_declared_frame_types_pass(lint):
    report = lint({
        "protocol.py": PROTOCOL,
        "peer.py": """\
            from protocol import MSG_PING, MSG_PONG

            def serve(sock, send_msg, kind):
                if kind == MSG_PING:
                    send_msg(sock, {"type": MSG_PONG})
            """,
    }, rules=RULES)
    assert report.ok


def test_undeclared_literal_fires(lint):
    report = lint({
        "protocol.py": PROTOCOL,
        "peer.py": """\
            from protocol import MSG_PING, MSG_PONG

            def serve(sock, send_msg, kind):
                if kind == MSG_PING:
                    send_msg(sock, {"type": MSG_PONG})
                send_msg(sock, {"type": "pnog"})
            """,
    }, rules=RULES)
    assert not report.ok
    assert "pnog" in report.findings[0].message


def test_undeclared_constant_fires(lint):
    report = lint({
        "protocol.py": PROTOCOL,
        "peer.py": """\
            from protocol import MSG_PING, MSG_PONG

            MSG_ROGUE = "rogue"

            def serve(sock, send_msg, kind):
                if kind == MSG_PING:
                    send_msg(sock, {"type": MSG_PONG})
                send_msg(sock, {"type": MSG_ROGUE})
            """,
    }, rules=RULES)
    assert not report.ok
    assert "rogue" in report.findings[0].message


def test_dict_call_header_form_is_checked(lint):
    report = lint({
        "protocol.py": PROTOCOL,
        "peer.py": """\
            from protocol import MSG_PING, MSG_PONG

            def serve(sock, send_msg, kind, status):
                if kind == MSG_PING:
                    send_msg(sock, dict(status, type=MSG_PONG))
                send_msg(sock, dict(status, type="bogus"))
            """,
    }, rules=RULES)
    assert len(report.findings) == 1
    assert "bogus" in report.findings[0].message


def test_unresolvable_header_passes(lint):
    report = lint({
        "protocol.py": PROTOCOL,
        "peer.py": """\
            from protocol import MSG_PING, MSG_PONG

            def forward(sock, send_msg, header, kind):
                if kind in (MSG_PING, MSG_PONG):
                    send_msg(sock, header)
            """,
    }, rules=RULES)
    assert report.ok


def test_dead_declared_type_fires(lint):
    # MSG_PONG is declared but never sent or handled anywhere else.
    report = lint({
        "protocol.py": PROTOCOL,
        "peer.py": """\
            from protocol import MSG_PING

            def serve(sock, send_msg, kind):
                if kind == MSG_PING:
                    send_msg(sock, {"type": MSG_PING})
            """,
    }, rules=RULES)
    assert not report.ok
    assert "MSG_PONG" in report.findings[0].message


def test_without_project_declaration_falls_back_to_installed(lint):
    report = lint({
        "peer.py": """\
            def serve(sock, send_msg):
                send_msg(sock, {"type": "ping"})
                send_msg(sock, {"type": "not-a-frame"})
            """,
    }, rules=RULES)
    assert len(report.findings) == 1
    assert "not-a-frame" in report.findings[0].message
