"""The ``repro.cli lint`` surface: exit codes, JSON, artifacts."""

import json
import textwrap

import pytest

from repro.cli import main

CLEAN = "x = 1\n"
DIRTY = textwrap.dedent("""\
    def run():
        for x in {1, 2}:
            print(x)
    """)


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "ok.py").write_text(CLEAN)
    assert main(["lint", str(tmp_path)]) == 0
    assert "0 finding(s)" in capsys.readouterr().out


def test_findings_exit_one(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert main(["lint", str(tmp_path)]) == 1
    assert "[determinism]" in capsys.readouterr().out


def test_json_output_and_artifact_file(tmp_path, capsys):
    (tmp_path / "bad.py").write_text(DIRTY)
    out = tmp_path / "report.json"
    code = main(["lint", "--json", "--out", str(out), str(tmp_path)])
    assert code == 1
    printed = json.loads(capsys.readouterr().out)
    on_disk = json.loads(out.read_text())
    assert printed == on_disk
    assert on_disk["schema"] == "repro-lint-v1"
    assert on_disk["ok"] is False
    assert on_disk["findings"][0]["rule"] == "determinism"


def test_rule_filter(tmp_path):
    (tmp_path / "bad.py").write_text(DIRTY)
    assert main(["lint", "--rule", "metric-name", str(tmp_path)]) == 0
    assert main(["lint", "--rule", "determinism", str(tmp_path)]) == 1


def test_unknown_rule_is_a_usage_error(tmp_path):
    (tmp_path / "ok.py").write_text(CLEAN)
    with pytest.raises(SystemExit):
        main(["lint", "--rule", "nope", str(tmp_path)])


def test_list_rules(capsys):
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in ("lock-discipline", "pickle-boundary", "determinism",
                 "metric-name", "frame-type"):
        assert rule in out


def test_default_path_is_the_installed_package(capsys):
    # No positional paths: lints the repro package itself — the same
    # invocation CI gates on, so it must be clean here too.
    assert main(["lint"]) == 0
