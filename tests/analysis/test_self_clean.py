"""The gate the CI job enforces: the repro source lints clean.

Any non-suppressed finding in ``src/repro`` fails this test — the same
condition ``repro.cli lint`` exits non-zero on.  A deliberate
violation must carry a ``# repro-lint: disable=<rule>`` comment, which
shows up in the suppressed count instead.
"""

from pathlib import Path

import repro
from repro.analysis import checker_names, format_report, run_lint

SRC = Path(repro.__file__).parent


def test_repro_source_lints_clean():
    report = run_lint([SRC])
    assert report.ok, "\n" + format_report(report)
    assert report.rules == checker_names()
    # The whole package was actually visited, not a subset.
    assert report.files >= 80


def test_declared_guard_maps_match_runtime_attributes():
    """Every GUARDED_BY entry names real attributes on a live instance.

    The checker proves the *accesses*; this proves the declarations
    aren't stale after a rename.
    """
    from repro.dist.worker import WorkerPool
    from repro.obs.registry import MetricsRegistry

    registry = MetricsRegistry()
    for attr, lock in MetricsRegistry.GUARDED_BY.items():
        assert hasattr(registry, attr), attr
        assert hasattr(registry, lock), lock

    pool = WorkerPool("127.0.0.1:0", count=1, respawn_budget=0)
    for attr, lock in WorkerPool.GUARDED_BY.items():
        assert hasattr(pool, attr), attr
        assert hasattr(pool, lock), lock


def test_coordinator_guard_map_matches_runtime_attributes():
    from repro.dist.coordinator import Coordinator

    coordinator = Coordinator()
    for attr, lock in Coordinator.GUARDED_BY.items():
        assert hasattr(coordinator, attr), attr
        assert hasattr(coordinator, lock), lock
