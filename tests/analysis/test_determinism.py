"""Fixture suite for the ``determinism`` checker."""

from .conftest import rules_of

RULES = ["determinism"]


class TestGlobalRng:
    def test_unseeded_random_in_sim_fires(self, lint):
        report = lint({"sim/engine.py": """\
            import random

            def jitter():
                return random.random()
            """}, rules=RULES)
        assert rules_of(report) == {"determinism"}
        assert "random.random" in report.findings[0].message

    def test_explicit_random_instance_passes(self, lint):
        report = lint({"codegen/synth.py": """\
            import random

            def make_rng(seed):
                return random.Random(seed)
            """}, rules=RULES)
        assert report.ok

    def test_numpy_global_rng_fires_but_default_rng_passes(self, lint):
        report = lint({"tuning/ga.py": """\
            import numpy as np

            def bad():
                return np.random.shuffle([1, 2])

            def good(seed):
                return np.random.default_rng(seed)
            """}, rules=RULES)
        assert len(report.findings) == 1
        assert "np.random.shuffle" in report.findings[0].message

    def test_result_dir_scoping(self, lint):
        # The same call outside sim/codegen/tuning is not result-path.
        report = lint({"obs/clock.py": """\
            import random

            def jitter():
                return random.random()
            """}, rules=RULES)
        assert report.ok


class TestWallClock:
    def test_time_time_in_result_dir_fires(self, lint):
        report = lint({"sim/run.py": """\
            import time

            def stamp():
                return time.time()
            """}, rules=RULES)
        assert not report.ok

    def test_perf_counter_passes(self, lint):
        # Monotonic timing is observability, not result data.
        report = lint({"sim/run.py": """\
            import time

            def elapsed(start):
                return time.perf_counter() - start
            """}, rules=RULES)
        assert report.ok

    def test_datetime_now_fires(self, lint):
        report = lint({"tuning/log.py": """\
            import datetime

            def stamp():
                return datetime.datetime.now()
            """}, rules=RULES)
        assert not report.ok


class TestSetIteration:
    def test_for_over_set_literal_fires(self, lint):
        report = lint({"a.py": """\
            def run():
                for x in {1, 2, 3}:
                    print(x)
            """}, rules=RULES)
        assert not report.ok

    def test_for_over_set_assigned_name_fires(self, lint):
        report = lint({"a.py": """\
            def run(items):
                pending = set(items)
                for x in pending:
                    print(x)
            """}, rules=RULES)
        assert not report.ok

    def test_sorted_set_passes(self, lint):
        report = lint({"a.py": """\
            def run(items):
                pending = set(items)
                for x in sorted(pending):
                    print(x)
            """}, rules=RULES)
        assert report.ok

    def test_order_insensitive_consumers_pass(self, lint):
        report = lint({"a.py": """\
            def run(conns):
                live = {c for c in conns}
                return any(c.ok for c in live), sum(c.n for c in live)
            """}, rules=RULES)
        assert report.ok

    def test_list_of_set_fires(self, lint):
        report = lint({"a.py": """\
            def run(items):
                seen = set(items)
                return list(seen)
            """}, rules=RULES)
        assert not report.ok

    def test_self_attr_set_from_init_fires(self, lint):
        # The exact shape of the pre-fix Coordinator._connections bug.
        report = lint({"hub.py": """\
            class Hub:
                def __init__(self):
                    self._conns = set()

                def close_all(self):
                    for conn in self._conns:
                        conn.close()
            """}, rules=RULES)
        assert not report.ok

    def test_membership_test_passes(self, lint):
        report = lint({"a.py": """\
            def run(items, probe):
                seen = set(items)
                return probe in seen
            """}, rules=RULES)
        assert report.ok
