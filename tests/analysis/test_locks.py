"""Fixture suite for the ``lock-discipline`` checker."""

from .conftest import rules_of

#: A class whose discipline is airtight: every guarded access is under
#: the lock or in a caller-holds-lock method.
GOOD = """\
import threading

class Pool:
    GUARDED_BY = {"_items": "_lock"}

    def __init__(self):
        self._lock = threading.Lock()
        self._items = []

    def add(self, item):
        with self._lock:
            self._items.append(item)

    def drain(self):
        with self._lock:
            return self._drain_locked()

    def _drain_locked(self):
        out, self._items = self._items, []
        return out
"""


def test_clean_class_passes(lint):
    report = lint({"pool.py": GOOD}, rules=["lock-discipline"])
    assert report.ok


def test_bare_access_fires(lint):
    report = lint({"pool.py": """\
        import threading

        class Pool:
            GUARDED_BY = {"_items": "_lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def peek(self):
                return self._items[-1]
        """}, rules=["lock-discipline"])
    assert rules_of(report) == {"lock-discipline"}
    assert "peek" in report.findings[0].message


def test_write_outside_lock_fires(lint):
    report = lint({"pool.py": """\
        import threading

        class Pool:
            GUARDED_BY = {"_items": "_lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def reset(self):
                self._items = []
        """}, rules=["lock-discipline"])
    assert not report.ok
    assert "write" in report.findings[0].message


def test_nested_callable_does_not_inherit_the_lock(lint):
    # The closure runs on another thread after the `with` exits.
    report = lint({"pool.py": """\
        import threading

        class Pool:
            GUARDED_BY = {"_items": "_lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def schedule(self, spawn):
                with self._lock:
                    def later():
                        return self._items.pop()
                    spawn(later)
        """}, rules=["lock-discipline"])
    assert not report.ok


def test_holds_lock_comment_marks_caller_holds_lock(lint):
    report = lint({"pool.py": """\
        import threading

        class Pool:
            GUARDED_BY = {"_items": "_lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def drain(self):  # repro-lint: holds-lock
                out, self._items = self._items, []
                return out
        """}, rules=["lock-discipline"])
    assert report.ok


def test_undeclared_lock_class_fires(lint):
    report = lint({"pool.py": """\
        import threading

        class Quiet:
            def __init__(self):
                self._lock = threading.Lock()
        """}, rules=["lock-discipline"])
    assert not report.ok
    assert "GUARDED_BY" in report.findings[0].message


def test_guarded_by_naming_nonexistent_lock_fires(lint):
    report = lint({"pool.py": """\
        import threading

        class Typo:
            GUARDED_BY = {"_items": "_lokc"}

            def __init__(self):
                self._lock = threading.Lock()
                self._items = []
        """}, rules=["lock-discipline"])
    assert not report.ok
    assert "_lokc" in report.findings[0].message


def test_suppression_silences_a_deliberate_violation(lint):
    report = lint({"pool.py": """\
        import threading

        class Pool:
            GUARDED_BY = {"_items": "_lock"}

            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def peek(self):
                return self._items[-1]  # repro-lint: disable=lock-discipline
        """}, rules=["lock-discipline"])
    assert report.ok
    assert len(report.suppressed) == 1
