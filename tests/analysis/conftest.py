"""Shared fixture: lint a dict of snippet files in a temp project."""

import textwrap

import pytest

from repro.analysis import run_lint


@pytest.fixture
def lint(tmp_path):
    """``lint({"rel/path.py": source, ...}, rules=[...]) -> LintReport``.

    Writes each snippet under ``tmp_path`` (dedented, so tests can
    indent them naturally) and runs the suite over the directory.
    """

    def _lint(files, rules=None):
        for rel, text in files.items():
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(textwrap.dedent(text), encoding="utf-8")
        return run_lint([tmp_path], rules=rules)

    return _lint


def rules_of(report):
    """The set of rule names that fired (non-suppressed)."""
    return {finding.rule for finding in report.findings}
