"""Fixture suite for the ``metric-name`` checker."""

RULES = ["metric-name"]

#: A fixture project's own taxonomy module — the checker prefers the
#: linted project's table over the installed one.
TAXONOMY = """\
COUNTERS = {"jobs.done": "completed jobs"}
COUNTER_PREFIXES = {"path.": "dynamic path family"}
GAUGES = {"queue.depth": "current queue depth"}
SPANS = {"epoch": "one epoch"}
"""


def test_declared_names_pass(lint):
    report = lint({
        "obs/taxonomy.py": TAXONOMY,
        "work.py": """\
            from repro import obs

            def run():
                obs.inc("jobs.done")
                obs.inc("path.fast.hit")
                obs.set_gauge("queue.depth", 3)
                obs.observe("epoch", 0.5)
                with obs.span("epoch"):
                    pass
            """,
    }, rules=RULES)
    assert report.ok


def test_undeclared_counter_fires(lint):
    report = lint({
        "obs/taxonomy.py": TAXONOMY,
        "work.py": """\
            from repro import obs

            def run():
                obs.inc("jobs.dnoe")
            """,
    }, rules=RULES)
    assert not report.ok
    assert "jobs.dnoe" in report.findings[0].message
    assert "COUNTERS" in report.findings[0].message


def test_span_checked_against_spans_not_counters(lint):
    report = lint({
        "obs/taxonomy.py": TAXONOMY,
        "work.py": """\
            from repro import obs

            def run():
                with obs.span("jobs.done"):
                    pass
            """,
    }, rules=RULES)
    assert not report.ok
    assert "SPANS" in report.findings[0].message


def test_dynamic_names_are_skipped(lint):
    report = lint({
        "obs/taxonomy.py": TAXONOMY,
        "work.py": """\
            from repro import obs

            PREFIX = "path."

            def run(name):
                obs.inc(PREFIX + name)
            """,
    }, rules=RULES)
    assert report.ok


def test_bare_imported_recorder_is_checked_too(lint):
    report = lint({
        "obs/taxonomy.py": TAXONOMY,
        "work.py": """\
            from repro.obs import inc

            def run():
                inc("not.declared")
            """,
    }, rules=RULES)
    assert not report.ok


def test_without_project_taxonomy_falls_back_to_installed(lint):
    report = lint({
        "work.py": """\
            from repro import obs

            def run():
                obs.inc("cache.result.hits")
                obs.inc("engine_path.anything.goes")
            """,
        "bad.py": """\
            from repro import obs

            def run():
                obs.inc("cache.result.hist")
            """,
    }, rules=RULES)
    assert [f.path for f in report.findings] == ["bad.py"]
