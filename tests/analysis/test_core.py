"""Framework behavior: registry, suppressions, reporters, rule selection."""

import json

import pytest

from repro.analysis import (
    checker_names,
    format_report,
    report_to_dict,
    run_lint,
)

#: A one-line snippet that always fires the determinism set-iteration
#: rule — the cheapest way to manufacture a finding in a fixture.
FIRES = "for x in {1, 2, 3}:\n    print(x)\n"


class TestRegistry:
    def test_all_five_rules_registered(self):
        assert checker_names() == [
            "determinism",
            "frame-type",
            "lock-discipline",
            "metric-name",
            "pickle-boundary",
        ]

    def test_unknown_rule_is_an_error(self, tmp_path):
        (tmp_path / "a.py").write_text("x = 1\n")
        with pytest.raises(ValueError, match="no-such-rule"):
            run_lint([tmp_path], rules=["no-such-rule"])

    def test_rule_selection_runs_only_selected(self, lint):
        report = lint({"a.py": FIRES}, rules=["metric-name"])
        assert report.rules == ["metric-name"]
        assert report.ok  # the determinism checker never ran


class TestSuppressions:
    def test_trailing_comment_suppresses_that_line(self, lint):
        report = lint({
            "a.py": (
                "for x in {1, 2}:  # repro-lint: disable=determinism\n"
                "    print(x)\n"
                + FIRES
            ),
        })
        assert len(report.findings) == 1
        assert len(report.suppressed) == 1
        assert report.findings[0].line == 3

    def test_standalone_comment_suppresses_whole_file(self, lint):
        report = lint({
            "a.py": "# repro-lint: disable=determinism\n" + FIRES,
        })
        assert report.ok
        assert len(report.suppressed) == 1

    def test_disable_all_matches_every_rule(self, lint):
        report = lint({
            "a.py": "for x in {1, 2}:  # repro-lint: disable=all\n"
                    "    print(x)\n",
        })
        assert report.ok
        assert len(report.suppressed) == 1

    def test_suppressing_other_rule_does_not_silence(self, lint):
        report = lint({
            "a.py": "for x in {1, 2}:  # repro-lint: disable=metric-name\n"
                    "    print(x)\n",
        })
        assert not report.ok


class TestPipeline:
    def test_parse_error_is_a_finding_not_a_crash(self, lint):
        report = lint({"bad.py": "def broken(:\n"})
        assert [f.rule for f in report.findings] == ["parse-error"]

    def test_clean_project_is_ok(self, lint):
        report = lint({"pkg/mod.py": "x = 1\n"})
        assert report.ok
        assert report.files == 1

    def test_findings_sorted_and_deduped(self, lint):
        report = lint({"b.py": FIRES, "a.py": FIRES})
        paths = [f.path for f in report.findings]
        assert paths == sorted(paths)
        assert len(set(report.findings)) == len(report.findings)


class TestReporters:
    def test_human_format_has_location_and_summary(self, lint):
        report = lint({"a.py": FIRES})
        text = format_report(report)
        assert "a.py:1: [determinism]" in text
        assert "1 finding(s)" in text

    def test_json_report_schema(self, lint):
        report = lint({"a.py": FIRES})
        data = report_to_dict(report)
        assert data["schema"] == "repro-lint-v1"
        assert data["ok"] is False
        assert data["findings"][0]["rule"] == "determinism"
        json.dumps(data)  # must be JSON-serializable as-is
