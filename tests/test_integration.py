"""Cross-module integration tests: the full tuning loop end to end.

These use reduced budgets so the suite stays fast; the full paper-scale
experiments live under ``benchmarks/``.
"""

import pytest

from repro import MicroGrad, MicroGradConfig
from repro.tuning.knobs import MIX_KNOB_NAMES


def _stress_config(tuner, seed=0, **overrides):
    base = dict(
        use_case="stress",
        metrics=("ipc",),
        core="large",
        tuner=tuner,
        knobs=MIX_KNOB_NAMES,
        fixed_knobs={"REG_DIST": 10, "MEM_SIZE": 16, "B_PATTERN": 0.1,
                     "MEM_TEMP1": 1, "MEM_TEMP2": 1, "MEM_STRIDE": 64},
        max_epochs=10,
        loop_size=250,
        instructions=6_000,
        seed=seed,
    )
    base.update(overrides)
    return MicroGradConfig(**base)


class TestStressLoopIntegration:
    def test_gd_beats_random_start(self):
        """The tuner must actually tune: the best IPC found is lower
        than the first epoch's base configuration."""
        result = MicroGrad(_stress_config("gd")).run()
        first = result.tuning.history[0].loss
        assert result.tuning.best_loss <= first

    def test_gd_beats_random_search_at_equal_budget(self):
        gd = MicroGrad(_stress_config("gd", seed=11)).run()
        budget_epochs = max(
            1, gd.tuning.requested_evaluations // 20
        )
        rnd = MicroGrad(
            _stress_config("random", seed=11, max_epochs=budget_epochs)
        ).run()
        # Equal-ish evaluation budgets: GD should not lose decisively.
        assert gd.metrics["ipc"] <= rnd.metrics["ipc"] * 1.15

    def test_stress_maximize_and_minimize_diverge(self):
        worst = MicroGrad(_stress_config("gd", seed=2)).run()
        best_cfg = _stress_config("gd", seed=2)
        best_cfg.maximize = True
        best = MicroGrad(best_cfg).run()
        assert best.metrics["ipc"] > worst.metrics["ipc"]


class TestCloningLoopIntegration:
    @pytest.fixture(scope="class")
    def clone(self):
        config = MicroGradConfig(
            use_case="cloning",
            application="bzip2",
            core="small",
            max_epochs=12,
            loop_size=250,
            instructions=6_000,
            seed=0,
        )
        return MicroGrad(config).run()

    def test_clone_reaches_reasonable_accuracy_fast(self, clone):
        assert clone.mean_accuracy > 0.80

    def test_distribution_axes_track_targets(self, clone):
        for metric in ("load", "store", "branch"):
            assert abs(clone.accuracy[metric] - 1.0) < 0.35

    def test_clone_program_is_valid_and_500ish(self, clone):
        clone.program.validate()
        assert len(clone.program) == 250

    def test_informed_initialization_helps(self):
        """The seeded start must reach the same accuracy band in fewer
        evaluations than a cold random start."""
        from repro.core.usecases.cloning import CloningUseCase

        config = MicroGradConfig(
            use_case="cloning", application="bzip2", core="small",
            max_epochs=5, loop_size=250, instructions=6_000,
        )
        usecase = CloningUseCase(config)
        targets = usecase.resolve_targets()
        mg = MicroGrad(config)
        initial = usecase.initial_vector(targets, mg.knob_space)
        seeded_config = mg.knob_space.materialize(initial)
        # The seed alone should already track the mix targets loosely.
        total = sum(
            seeded_config[k] for k in MIX_KNOB_NAMES
        )
        load_share = (
            seeded_config["LD"] + seeded_config["LW"]
        ) / total
        assert abs(load_share - targets["load"]) < 0.15


class TestScopeOptions:
    def test_simpoint_scope_targets_single_phase(self):
        from repro.core.usecases.cloning import CloningUseCase
        from repro.sim import SMALL_CORE, Simulator
        from repro.workloads import get_benchmark

        config = MicroGradConfig(
            use_case="cloning", application="mcf", core="small",
            metrics=("ipc",), instructions=5_000,
        )
        targets = CloningUseCase(config).resolve_targets()
        workload = get_benchmark("mcf")
        expected = workload.dominant_phase_metrics(
            SMALL_CORE, instructions=5_000
        )
        assert targets["ipc"] == pytest.approx(expected["ipc"])

    def test_combined_scope_targets_mixture(self):
        from repro.core.usecases.cloning import CloningUseCase
        from repro.sim import SMALL_CORE
        from repro.workloads import get_benchmark

        config = MicroGradConfig(
            use_case="cloning", application="mcf", core="small",
            metrics=("ipc",), instructions=5_000,
            application_scope="combined",
        )
        targets = CloningUseCase(config).resolve_targets()
        expected = get_benchmark("mcf").reference_metrics(
            SMALL_CORE, instructions=5_000
        )
        assert targets["ipc"] == pytest.approx(expected["ipc"])

    def test_invalid_scope_rejected(self):
        with pytest.raises(ValueError, match="application_scope"):
            MicroGradConfig(
                use_case="cloning", application="mcf",
                application_scope="whole-hog",
            )
