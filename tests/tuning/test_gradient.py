"""Unit tests for the gradient-descent tuner (Listing 3)."""

import numpy as np
import pytest

from repro.tuning.gradient import GDParams, GradientDescentTuner

from tests.tuning.conftest import make_quadratic_problem


class TestSchedules:
    def test_step_size_decays_monotonically(self):
        p = GDParams()
        steps = [p.step_size(e) for e in range(30)]
        assert all(a >= b for a, b in zip(steps, steps[1:]))
        assert steps[0] == p.step_initial
        assert steps[-1] >= p.step_final

    def test_step_size_floors_at_final(self):
        p = GDParams(step_initial=2.0, step_final=0.5, step_decay=0.5)
        assert p.step_size(100) == 0.5

    def test_skip_chance_decays(self):
        p = GDParams()
        chances = [p.skip_chance(e) for e in range(20)]
        assert all(a >= b for a, b in zip(chances, chances[1:]))
        assert chances[0] == p.skip_probability


class TestConvergence:
    def test_converges_to_quadratic_minimum(self, quadratic_problem):
        space, evaluator, loss = quadratic_problem
        tuner = GradientDescentTuner(
            evaluator, loss, GDParams(max_epochs=40), seed=3
        )
        result = tuner.run()
        assert result.best_loss <= 1.0
        assert result.best_config["K0"] == pytest.approx(3.0, abs=1.0)
        assert result.best_config["K1"] == pytest.approx(7.0, abs=1.0)

    def test_target_loss_stops_early(self, quadratic_problem):
        space, evaluator, loss = quadratic_problem
        tuner = GradientDescentTuner(
            evaluator, loss, GDParams(max_epochs=60, target_loss=0.5), seed=3
        )
        result = tuner.run()
        assert result.converged
        assert result.stop_reason == "target_loss"
        assert result.epochs < 60

    def test_initial_vector_is_honoured(self, quadratic_problem):
        space, evaluator, loss = quadratic_problem
        start = np.array([3.0, 7.0, 5.0])
        tuner = GradientDescentTuner(
            evaluator, loss,
            GDParams(max_epochs=5, target_loss=1e-9),
            initial=start, seed=0,
        )
        result = tuner.run()
        assert result.best_loss == pytest.approx(0.0)
        assert result.epochs == 1

    def test_escapes_local_minimum_with_restarts(self, multimodal_problem):
        space, evaluator, loss = multimodal_problem
        # Start inside the deceptive basin.
        escaped = 0
        for seed in range(5):
            space, evaluator, loss = multimodal_problem
            evaluator.reset_counters()
            tuner = GradientDescentTuner(
                evaluator, loss,
                GDParams(max_epochs=120, target_loss=0.1, patience=5,
                         restarts_on_plateau=8),
                initial=np.array([1.0, 1.0]), seed=seed,
            )
            if tuner.run().best_loss < 2.0:  # local basin floors at 2.0
                escaped += 1
        assert escaped >= 4


class TestCostAccounting:
    def test_epoch_cost_is_about_two_gradient_checks_per_knob(self):
        space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
        params = GDParams(max_epochs=4, skip_probability=0.0,
                          target_loss=-1.0, restarts_on_plateau=0,
                          movement_epsilon=0.0, patience=100)
        tuner = GradientDescentTuner(evaluator, loss, params, seed=0)
        result = tuner.run()
        # Per epoch: 1 base + 2*knobs gradient checks.
        expected = result.epochs * (1 + 2 * len(space))
        assert result.requested_evaluations == expected

    def test_skipping_reduces_evaluations(self):
        space_a, eval_a, loss_a = make_quadratic_problem()
        space_b, eval_b, loss_b = make_quadratic_problem()
        never_skip = GradientDescentTuner(
            eval_a, loss_a,
            GDParams(max_epochs=6, skip_probability=0.0, target_loss=-1,
                     movement_epsilon=0.0, patience=100,
                     restarts_on_plateau=0),
            seed=1,
        ).run()
        heavy_skip = GradientDescentTuner(
            eval_b, loss_b,
            GDParams(max_epochs=6, skip_probability=0.9, skip_decay=1.0,
                     target_loss=-1, movement_epsilon=0.0, patience=100,
                     restarts_on_plateau=0),
            seed=1,
        ).run()
        assert (
            heavy_skip.requested_evaluations < never_skip.requested_evaluations
        )


class TestHistory:
    def test_history_records_every_epoch(self, quadratic_problem):
        space, evaluator, loss = quadratic_problem
        params = GDParams(max_epochs=8, target_loss=-1.0,
                          movement_epsilon=0.0, patience=100,
                          restarts_on_plateau=0)
        result = GradientDescentTuner(evaluator, loss, params, seed=2).run()
        assert len(result.history) == result.epochs
        assert [r.epoch for r in result.history] == list(
            range(1, result.epochs + 1)
        )

    def test_best_loss_curve_is_monotone(self, quadratic_problem):
        space, evaluator, loss = quadratic_problem
        result = GradientDescentTuner(
            evaluator, loss, GDParams(max_epochs=20), seed=4
        ).run()
        curve = result.loss_curve()
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_evaluation_counter_is_cumulative(self, quadratic_problem):
        space, evaluator, loss = quadratic_problem
        result = GradientDescentTuner(
            evaluator, loss, GDParams(max_epochs=10), seed=4
        ).run()
        counts = [r.evaluations for r in result.history]
        assert all(a <= b for a, b in zip(counts, counts[1:]))


class TestWholeEpochBatches:
    def test_each_epoch_is_one_batch(self, quadratic_problem):
        space, evaluator, loss = quadratic_problem
        sizes = []
        original = evaluator.evaluate_batch

        def spy(batch, on_result=None):
            sizes.append(len(batch))
            return original(batch, on_result=on_result)

        evaluator.evaluate_batch = spy
        result = GradientDescentTuner(
            evaluator, loss, GDParams(max_epochs=6, target_loss=-1.0,
                                      patience=99, movement_epsilon=0.0),
            seed=1,
        ).run()
        # Exactly one evaluator round-trip per epoch: base + 2 probes
        # per non-skipped knob, never a separate base evaluate() call.
        assert len(sizes) == len(result.history) == 6
        assert all(s % 2 == 1 and 1 <= s <= 1 + 2 * len(space)
                   for s in sizes)

    def test_batched_epochs_match_sequential_formulation(self):
        """Trajectory regression: the epoch batch must not change results.

        A second evaluator that refuses batching (``batch_fn`` mapping
        serially, caching untouched) produces the exact same history —
        the batch is a dispatch change, not an algorithm change.
        """
        space_a, eval_a, loss_a = make_quadratic_problem()
        space_b, eval_b, loss_b = make_quadratic_problem()
        params = GDParams(max_epochs=12)
        a = GradientDescentTuner(eval_a, loss_a, params, seed=7).run()
        b = GradientDescentTuner(eval_b, loss_b, params, seed=7).run()
        assert [h.best_loss for h in a.history] == \
            [h.best_loss for h in b.history]
        assert a.best_config == b.best_config
        assert eval_a.requested_evaluations == eval_b.requested_evaluations
        assert eval_a.unique_evaluations == eval_b.unique_evaluations
