"""Unit tests for the evaluation engine (memoization + accounting)."""

import numpy as np

from repro.tuning.evaluator import Evaluator
from repro.tuning.knobs import Knob, KnobSpace


def _space():
    return KnobSpace([Knob("A", (1.0, 2.0, 3.0)), Knob("B", (5.0, 6.0))])


class TestEvaluator:
    def test_counts_requested_and_unique(self):
        calls = []
        ev = Evaluator(_space(), lambda c: calls.append(c) or {"y": c["A"]})
        ev.evaluate(np.array([0.0, 0.0]))
        ev.evaluate(np.array([0.0, 0.0]))
        assert ev.requested_evaluations == 2
        assert ev.unique_evaluations == 1
        assert len(calls) == 1

    def test_rounding_shares_cache_entries(self):
        ev = Evaluator(_space(), lambda c: {"y": 0.0})
        ev.evaluate(np.array([0.1, 0.0]))
        ev.evaluate(np.array([-0.3, 0.4]))  # rounds to the same lattice point
        assert ev.unique_evaluations == 1

    def test_cache_disabled_reruns(self):
        ev = Evaluator(_space(), lambda c: {"y": 0.0}, cache=False)
        ev.evaluate(np.array([0.0, 0.0]))
        ev.evaluate(np.array([0.0, 0.0]))
        assert ev.unique_evaluations == 2

    def test_evaluate_raw_shares_the_cache(self):
        ev = Evaluator(_space(), lambda c: {"y": c["A"]})
        config = _space().materialize(np.array([1.0, 1.0]))
        first = ev.evaluate_raw(config)
        again = ev.evaluate(np.array([1.0, 1.0]))
        assert first == again
        assert ev.unique_evaluations == 1

    def test_reset_counters_keeps_cache(self):
        ev = Evaluator(_space(), lambda c: {"y": 0.0})
        ev.evaluate(np.array([0.0, 0.0]))
        ev.reset_counters()
        assert ev.requested_evaluations == 0
        ev.evaluate(np.array([0.0, 0.0]))
        assert ev.unique_evaluations == 0  # served from cache

    def test_metrics_pass_through(self):
        ev = Evaluator(_space(), lambda c: {"y": c["A"] + c["B"]})
        metrics = ev.evaluate(np.array([2.0, 1.0]))
        assert metrics == {"y": 3.0 + 6.0}
