"""Unit tests for the evaluation engine (memoization + accounting)."""

import numpy as np

from repro.tuning.evaluator import Evaluator
from repro.tuning.knobs import Knob, KnobSpace


def _space():
    return KnobSpace([Knob("A", (1.0, 2.0, 3.0)), Knob("B", (5.0, 6.0))])


class TestEvaluator:
    def test_counts_requested_and_unique(self):
        calls = []
        ev = Evaluator(_space(), lambda c: calls.append(c) or {"y": c["A"]})
        ev.evaluate(np.array([0.0, 0.0]))
        ev.evaluate(np.array([0.0, 0.0]))
        assert ev.requested_evaluations == 2
        assert ev.unique_evaluations == 1
        assert len(calls) == 1

    def test_rounding_shares_cache_entries(self):
        ev = Evaluator(_space(), lambda c: {"y": 0.0})
        ev.evaluate(np.array([0.1, 0.0]))
        ev.evaluate(np.array([-0.3, 0.4]))  # rounds to the same lattice point
        assert ev.unique_evaluations == 1

    def test_cache_disabled_reruns(self):
        ev = Evaluator(_space(), lambda c: {"y": 0.0}, cache=False)
        ev.evaluate(np.array([0.0, 0.0]))
        ev.evaluate(np.array([0.0, 0.0]))
        assert ev.unique_evaluations == 2

    def test_evaluate_raw_shares_the_cache(self):
        ev = Evaluator(_space(), lambda c: {"y": c["A"]})
        config = _space().materialize(np.array([1.0, 1.0]))
        first = ev.evaluate_raw(config)
        again = ev.evaluate(np.array([1.0, 1.0]))
        assert first == again
        assert ev.unique_evaluations == 1

    def test_reset_counters_keeps_cache(self):
        ev = Evaluator(_space(), lambda c: {"y": 0.0})
        ev.evaluate(np.array([0.0, 0.0]))
        ev.reset_counters()
        assert ev.requested_evaluations == 0
        ev.evaluate(np.array([0.0, 0.0]))
        assert ev.unique_evaluations == 0  # served from cache

    def test_metrics_pass_through(self):
        ev = Evaluator(_space(), lambda c: {"y": c["A"] + c["B"]})
        metrics = ev.evaluate(np.array([2.0, 1.0]))
        assert metrics == {"y": 3.0 + 6.0}


class TestUnifiedCacheKeys:
    def test_raw_int_and_materialized_float_share_an_entry(self):
        """evaluate/evaluate_raw must canonicalize to the same key."""
        ev = Evaluator(_space(), lambda c: {"y": 1.0})
        ev.evaluate_raw({"A": 2, "B": 6})  # ints, unsorted order
        ev.evaluate(np.array([1.0, 1.0]))  # materializes {"A": 2.0, "B": 6.0}
        assert ev.requested_evaluations == 2
        assert ev.unique_evaluations == 1

    def test_key_order_does_not_matter(self):
        ev = Evaluator(_space(), lambda c: {"y": 1.0})
        ev.evaluate_raw({"B": 6, "A": 2})
        ev.evaluate_raw({"A": 2, "B": 6})
        assert ev.unique_evaluations == 1


class TestEvaluateBatch:
    def test_results_in_input_order(self):
        ev = Evaluator(_space(), lambda c: {"y": c["A"]})
        batch = [np.array([0.0, 0.0]), np.array([2.0, 0.0]),
                 np.array([1.0, 1.0])]
        results = ev.evaluate_batch(batch)
        assert [r["y"] for r in results] == [1.0, 3.0, 2.0]

    def test_batch_dedups_against_itself(self):
        calls = []
        ev = Evaluator(_space(), lambda c: calls.append(c) or {"y": c["A"]})
        batch = [np.array([0.0, 0.0]), np.array([0.2, -0.1]),  # same point
                 np.array([2.0, 1.0])]
        results = ev.evaluate_batch(batch)
        assert ev.requested_evaluations == 3
        assert ev.unique_evaluations == 2
        assert len(calls) == 2
        assert results[0] == results[1]

    def test_batch_dedups_against_memo_cache(self):
        ev = Evaluator(_space(), lambda c: {"y": c["A"]})
        ev.evaluate(np.array([0.0, 0.0]))
        ev.evaluate_batch([np.array([0.0, 0.0]), np.array([1.0, 0.0])])
        assert ev.requested_evaluations == 3
        assert ev.unique_evaluations == 2

    def test_batch_fn_receives_only_unique_configs(self):
        seen = []

        def batch_fn(configs):
            seen.append(list(configs))
            return [{"y": c["A"]} for c in configs]

        ev = Evaluator(_space(), lambda c: {"y": -1.0}, batch_fn=batch_fn)
        ev.evaluate_batch([np.array([0.0, 0.0]), np.array([0.0, 0.0]),
                           np.array([1.0, 0.0])])
        assert len(seen) == 1
        assert len(seen[0]) == 2

    def test_batch_fn_length_mismatch_rejected(self):
        import pytest

        ev = Evaluator(_space(), lambda c: {"y": 0.0},
                       batch_fn=lambda configs: [])
        with pytest.raises(RuntimeError, match="batch_fn"):
            ev.evaluate_batch([np.array([0.0, 0.0])])

    def test_raw_batch_counts_and_dedups(self):
        ev = Evaluator(_space(), lambda c: {"y": c["A"]})
        results = ev.evaluate_raw_batch(
            [{"A": 1, "B": 5}, {"A": 1.0, "B": 5.0}, {"A": 3, "B": 5}]
        )
        assert ev.requested_evaluations == 3
        assert ev.unique_evaluations == 2
        assert results[0] == results[1] == {"y": 1}

    def test_cache_disabled_runs_every_entry(self):
        ev = Evaluator(_space(), lambda c: {"y": 0.0}, cache=False)
        ev.evaluate_batch([np.array([0.0, 0.0]), np.array([0.0, 0.0])])
        assert ev.unique_evaluations == 2

    def test_empty_batch(self):
        ev = Evaluator(_space(), lambda c: {"y": 0.0})
        assert ev.evaluate_batch([]) == []
        assert ev.requested_evaluations == 0


class TestDiskCacheIntegration:
    def test_disk_hits_skip_evaluation_but_count_requests(self, tmp_path):
        from repro.exec.cache import DiskResultCache

        cache = DiskResultCache(tmp_path)
        first = Evaluator(_space(), lambda c: {"y": c["A"]},
                          disk_cache=cache, cache_context="ctx")
        first.evaluate(np.array([1.0, 0.0]))
        assert first.unique_evaluations == 1

        def explode(config):
            raise AssertionError("should have been served from disk")

        warm = Evaluator(_space(), explode,
                         disk_cache=DiskResultCache(tmp_path),
                         cache_context="ctx")
        metrics = warm.evaluate(np.array([1.0, 0.0]))
        assert metrics == {"y": 2.0}
        assert warm.requested_evaluations == 1
        assert warm.unique_evaluations == 0

    def test_context_mismatch_reevaluates(self, tmp_path):
        from repro.exec.cache import DiskResultCache

        cache = DiskResultCache(tmp_path)
        a = Evaluator(_space(), lambda c: {"y": 1.0},
                      disk_cache=cache, cache_context="core=small")
        a.evaluate(np.array([0.0, 0.0]))
        b = Evaluator(_space(), lambda c: {"y": 2.0},
                      disk_cache=cache, cache_context="core=large")
        assert b.evaluate(np.array([0.0, 0.0])) == {"y": 2.0}


class TestGroupingPlanner:
    """group_fn reorders dispatch only; results/accounting are unchanged."""

    def _group_by_a(self, config):
        return config["A"]

    def test_dispatch_reordered_on_group_boundaries(self):
        seen = []

        def batch_fn(configs):
            seen.append([(c["A"], c["B"]) for c in configs])
            return [{"y": c["A"] * 10 + c["B"]} for c in configs]

        ev = Evaluator(_space(), lambda c: {"y": -1.0},
                       batch_fn=batch_fn, group_fn=self._group_by_a)
        # Interleaved groups (A=1, A=2, A=1, A=2): the planner makes
        # equal-A configs adjacent, stable within each group, groups in
        # first-seen order.
        batch = [np.array([0.0, 0.0]), np.array([1.0, 0.0]),
                 np.array([0.0, 1.0]), np.array([1.0, 1.0])]
        results = ev.evaluate_batch(batch)
        assert seen == [[(1.0, 5.0), (1.0, 6.0), (2.0, 5.0), (2.0, 6.0)]]
        # Results land back in input order; y encodes A*10+B.
        assert [r["y"] for r in results] == [15.0, 25.0, 16.0, 26.0]

    def test_results_stay_in_input_order(self):
        ev = Evaluator(_space(), lambda c: {"y": c["A"] * 10 + c["B"]},
                       group_fn=self._group_by_a)
        batch = [np.array([2.0, 0.0]), np.array([0.0, 1.0]),
                 np.array([2.0, 1.0]), np.array([0.0, 0.0])]
        grouped = ev.evaluate_batch(batch)
        plain = Evaluator(
            _space(), lambda c: {"y": c["A"] * 10 + c["B"]}
        ).evaluate_batch(batch)
        assert grouped == plain

    def test_accounting_unchanged(self):
        ev = Evaluator(_space(), lambda c: {"y": 0.0},
                       group_fn=self._group_by_a)
        ev.evaluate_batch([np.array([0.0, 0.0]), np.array([0.0, 0.0]),
                           np.array([1.0, 0.0])])
        assert ev.requested_evaluations == 3
        assert ev.unique_evaluations == 2

    def test_on_result_fires_for_every_index(self):
        fired = {}

        def on_result(idx, metrics):
            fired[idx] = metrics

        ev = Evaluator(_space(), lambda c: {"y": c["A"]},
                       group_fn=self._group_by_a)
        ev.evaluate(np.array([0.0, 0.0]))  # pre-populate one cache hit
        batch = [np.array([1.0, 0.0]), np.array([0.0, 0.0]),
                 np.array([2.0, 0.0]), np.array([1.0, 0.0])]
        results = ev.evaluate_batch(batch, on_result=on_result)
        assert sorted(fired) == [0, 1, 2, 3]
        assert all(fired[i] == results[i] for i in fired)

    def test_single_pending_config_skips_planner(self):
        calls = []

        def group_fn(config):
            calls.append(config)
            return 0

        ev = Evaluator(_space(), lambda c: {"y": 0.0}, group_fn=group_fn)
        ev.evaluate_batch([np.array([0.0, 0.0])])
        assert calls == []
