"""Unit tests for the random-search control baseline."""

from repro.tuning.random_search import RandomSearch

from tests.tuning.conftest import make_quadratic_problem


class TestRandomSearch:
    def test_budget_is_epochs_times_group(self):
        space, evaluator, loss = make_quadratic_problem()
        result = RandomSearch(
            evaluator, loss, max_epochs=5, evaluations_per_epoch=7, seed=0
        ).run()
        assert result.requested_evaluations == 35
        assert result.epochs == 5

    def test_eventually_finds_decent_point(self):
        space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
        result = RandomSearch(
            evaluator, loss, max_epochs=30, evaluations_per_epoch=20, seed=1
        ).run()
        assert result.best_loss < 10.0

    def test_history_best_monotone(self):
        space, evaluator, loss = make_quadratic_problem()
        result = RandomSearch(
            evaluator, loss, max_epochs=10, evaluations_per_epoch=5, seed=2
        ).run()
        curve = result.loss_curve()
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_deterministic_per_seed(self):
        def run(seed):
            space, evaluator, loss = make_quadratic_problem()
            return RandomSearch(
                evaluator, loss, max_epochs=5, evaluations_per_epoch=5,
                seed=seed,
            ).run().best_loss

        assert run(7) == run(7)
