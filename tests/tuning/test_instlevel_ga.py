"""Unit tests for the instruction-level GA tuner."""

import pytest

from repro.codegen.instlevel import GenomeEvaluator, InstructionLevelSpace
from repro.tuning.genetic import GAParams
from repro.tuning.instlevel_ga import InstructionLevelGeneticTuner
from repro.tuning.loss import StressLoss


def _synthetic_problem():
    """Loss = fraction of non-SD genes: global optimum is all stores."""
    space = InstructionLevelSpace(length=12)

    def evaluate(program):
        stores = sum(1 for i in program if i.mnemonic == "SD")
        return {"y": 1.0 - stores / len(program)}

    evaluator = GenomeEvaluator(evaluate)
    return space, evaluator, StressLoss(metric="y")


class TestInstructionLevelGA:
    def test_converges_toward_optimum(self):
        space, evaluator, loss = _synthetic_problem()
        result = InstructionLevelGeneticTuner(
            space, evaluator, loss,
            GAParams(max_epochs=20, population_size=30), seed=0,
        ).run()
        assert result.best_loss < 0.35  # mostly stores

    def test_epoch_cost_is_population_size(self):
        space, evaluator, loss = _synthetic_problem()
        result = InstructionLevelGeneticTuner(
            space, evaluator, loss,
            GAParams(max_epochs=3, population_size=15, target_loss=-1.0),
            seed=1,
        ).run()
        assert result.requested_evaluations == 3 * 15

    def test_result_config_carries_genome(self):
        space, evaluator, loss = _synthetic_problem()
        result = InstructionLevelGeneticTuner(
            space, evaluator, loss, GAParams(max_epochs=2,
                                             population_size=10),
            seed=2,
        ).run()
        genome = result.best_config["GENOME"]
        assert len(genome) == 12

    def test_best_loss_monotone(self):
        space, evaluator, loss = _synthetic_problem()
        result = InstructionLevelGeneticTuner(
            space, evaluator, loss,
            GAParams(max_epochs=8, population_size=12), seed=3,
        ).run()
        curve = result.loss_curve()
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_target_loss_stops_early(self):
        space, evaluator, loss = _synthetic_problem()
        result = InstructionLevelGeneticTuner(
            space, evaluator, loss,
            GAParams(max_epochs=60, population_size=30, target_loss=0.35),
            seed=4,
        ).run()
        assert result.converged
        assert result.epochs < 60


class TestModelComparisonOnSubstrate:
    def test_instruction_level_ga_runs_on_real_platform(self):
        """End to end on the simulator: minimize IPC over sequences."""
        from repro.core.platform import PerformancePlatform
        from repro.sim import SMALL_CORE

        platform = PerformancePlatform(SMALL_CORE, instructions=3_000)
        space = InstructionLevelSpace(length=40)
        evaluator = GenomeEvaluator(platform.evaluate)
        result = InstructionLevelGeneticTuner(
            space, evaluator, StressLoss("ipc"),
            GAParams(max_epochs=4, population_size=12), seed=5,
        ).run()
        assert result.best_metrics["ipc"] > 0
        first = result.history[0].loss
        assert result.best_loss <= first
