"""Unit tests for the genetic-algorithm baseline (Table I)."""

import numpy as np
import pytest

from repro.tuning.genetic import GAParams, GeneticTuner

from tests.tuning.conftest import make_quadratic_problem


class TestTableIDefaults:
    """The GA defaults must match Table I of the paper."""

    def test_population_size_50(self):
        assert GAParams().population_size == 50

    def test_mutation_rate_3_percent(self):
        assert GAParams().mutation_rate == 0.03

    def test_crossover_rate_100_percent(self):
        assert GAParams().crossover_rate == 1.0

    def test_tournament_size_5(self):
        assert GAParams().tournament_size == 5

    def test_elitism_enabled(self):
        assert GAParams().elitism is True


class TestOperators:
    def _tuner(self, seed=0, **params):
        space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
        return GeneticTuner(
            evaluator, loss, GAParams(**params), seed=seed
        )

    def test_crossover_takes_prefix_and_suffix(self):
        tuner = self._tuner()
        a = np.array([1.0, 1.0, 1.0])
        b = np.array([9.0, 9.0, 9.0])
        child = tuner._crossover(a, b)
        assert len(child) == 3
        assert all(g in (1.0, 9.0) for g in child)
        # Single-point: once genes switch to b they stay b.
        switched = False
        for g in child:
            if g == 9.0:
                switched = True
            elif switched:
                pytest.fail("gene returned to parent A after crossover point")

    def test_zero_crossover_rate_copies_parent(self):
        tuner = self._tuner(crossover_rate=0.0)
        a = np.array([1.0, 2.0, 3.0])
        b = np.array([7.0, 8.0, 9.0])
        assert list(tuner._crossover(a, b)) == [1.0, 2.0, 3.0]

    def test_mutation_rate_statistics(self):
        tuner = self._tuner(mutation_rate=0.3)
        genome = np.full(3, 5.0)
        changed = 0
        trials = 600
        for _ in range(trials):
            mutated = tuner._mutate(genome)
            changed += int((mutated != genome).any())
        # P(any of 3 genes redrawn) = 1-0.7^3 ~= 0.657; redraw may keep
        # the old value (1/10), so expect slightly less.
        assert 0.45 < changed / trials < 0.75

    def test_mutated_genes_stay_on_lattice(self):
        tuner = self._tuner(mutation_rate=1.0)
        mutated = tuner._mutate(np.full(3, 5.0))
        bounds = tuner.space.upper_bounds()
        assert ((mutated >= 0) & (mutated <= bounds)).all()

    def test_tournament_prefers_lower_loss(self):
        tuner = self._tuner()
        population = [np.full(3, v) for v in (0.0, 5.0, 9.0)]
        losses = [100.0, 0.0, 50.0]
        trials = 300
        wins = sum(
            (tuner._tournament(population, losses) == 5.0).all()
            for _ in range(trials)
        )
        # Tournament of 5 with replacement over 3 individuals picks the
        # best unless all 5 draws miss it: 1 - (2/3)^5 ~= 0.87.
        assert wins / trials > 0.78


class TestRun:
    def test_converges_on_quadratic(self):
        space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
        result = GeneticTuner(
            evaluator, loss, GAParams(max_epochs=15, population_size=30),
            seed=1,
        ).run()
        assert result.best_loss <= 2.0

    def test_epoch_cost_is_population_size(self):
        space, evaluator, loss = make_quadratic_problem()
        params = GAParams(max_epochs=4, population_size=20, target_loss=-1.0)
        result = GeneticTuner(evaluator, loss, params, seed=0).run()
        assert result.requested_evaluations == 4 * 20

    def test_elitism_makes_best_loss_monotone(self):
        space, evaluator, loss = make_quadratic_problem()
        result = GeneticTuner(
            evaluator, loss, GAParams(max_epochs=10, population_size=20),
            seed=2,
        ).run()
        per_epoch_best = [r.loss for r in result.history]
        assert all(
            a >= b - 1e-9 for a, b in zip(per_epoch_best, per_epoch_best[1:])
        )

    def test_target_loss_stops_early(self):
        space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
        result = GeneticTuner(
            evaluator, loss,
            GAParams(max_epochs=50, population_size=40, target_loss=0.5),
            seed=3,
        ).run()
        assert result.converged
        assert result.epochs < 50
