"""Unit tests for the Adam-style tuner extension."""

import numpy as np
import pytest

from repro.tuning.adam import AdamParams, AdamTuner

from tests.tuning.conftest import make_quadratic_problem


class TestAdamTuner:
    def test_converges_to_quadratic_minimum(self):
        space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
        result = AdamTuner(
            evaluator, loss, AdamParams(max_epochs=50), seed=1
        ).run()
        assert result.best_loss <= 2.0

    def test_target_loss_stops_early(self):
        space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
        result = AdamTuner(
            evaluator, loss, AdamParams(max_epochs=80, target_loss=1.0),
            seed=2,
        ).run()
        assert result.converged
        assert result.epochs < 80

    def test_initial_vector_honoured(self):
        space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
        result = AdamTuner(
            evaluator, loss, AdamParams(max_epochs=3, target_loss=1e-9),
            initial=np.array([3.0, 7.0, 5.0]), seed=0,
        ).run()
        assert result.best_loss == pytest.approx(0.0)

    def test_epoch_cost_matches_gd_accounting(self):
        space, evaluator, loss = make_quadratic_problem()
        params = AdamParams(max_epochs=5, target_loss=-1.0, patience=99)
        result = AdamTuner(evaluator, loss, params, seed=0).run()
        # 1 base + 2 x knobs per epoch, same currency as Listing 3.
        assert result.requested_evaluations == 5 * (1 + 2 * len(space))

    def test_patience_stops_on_plateau(self):
        space, evaluator, loss = make_quadratic_problem()
        result = AdamTuner(
            evaluator, loss,
            AdamParams(max_epochs=100, patience=3, target_loss=-1.0),
            seed=3,
        ).run()
        assert result.stop_reason in ("patience", "max_epochs")
        assert result.epochs < 100

    def test_history_monotone_best(self):
        space, evaluator, loss = make_quadratic_problem()
        result = AdamTuner(evaluator, loss, AdamParams(max_epochs=20),
                           seed=4).run()
        curve = result.loss_curve()
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_comparable_to_gd_on_synthetic_problem(self):
        from repro.tuning.gradient import GDParams, GradientDescentTuner

        losses = {}
        for name in ("adam", "gd"):
            space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
            if name == "adam":
                result = AdamTuner(evaluator, loss,
                                   AdamParams(max_epochs=30), seed=5).run()
            else:
                result = GradientDescentTuner(
                    evaluator, loss, GDParams(max_epochs=30), seed=5
                ).run()
            losses[name] = result.best_loss
        # Both adaptive-gradient methods should solve the smooth problem.
        assert losses["adam"] <= 4.0
        assert losses["gd"] <= 4.0


class TestWholeEpochBatches:
    def test_each_epoch_is_one_batch(self):
        space, evaluator, loss = make_quadratic_problem()
        sizes = []
        original = evaluator.evaluate_batch

        def spy(batch, on_result=None):
            sizes.append(len(batch))
            return original(batch, on_result=on_result)

        evaluator.evaluate_batch = spy
        params = AdamParams(max_epochs=5, target_loss=-1.0, patience=99)
        result = AdamTuner(evaluator, loss, params, seed=0).run()
        assert len(sizes) == len(result.history) == 5
        # Adam never skips knobs: always base + 2 x knobs.
        assert sizes == [1 + 2 * len(space)] * 5
