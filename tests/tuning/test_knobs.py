"""Unit tests for knobs and knob spaces."""

import numpy as np
import pytest

from repro.tuning.knobs import (
    B_PATTERN_VALUES,
    INSTRUCTION_FRACTIONS,
    Knob,
    KnobSpace,
    MEM_SIZE_VALUES,
    MIX_KNOB_NAMES,
    default_cloning_space,
    full_stress_space,
    instruction_mix_space,
)


class TestKnob:
    def test_value_at_rounds_to_lattice(self):
        knob = Knob("K", (10.0, 20.0, 30.0))
        assert knob.value_at(0.4) == 10.0
        assert knob.value_at(0.6) == 20.0
        assert knob.value_at(2.9) == 30.0

    def test_value_at_clips(self):
        knob = Knob("K", (1.0, 2.0))
        assert knob.value_at(-5.0) == 1.0
        assert knob.value_at(99.0) == 2.0

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            Knob("K", ())


class TestKnobSpace:
    def _space(self):
        return KnobSpace(
            [Knob("A", (1.0, 2.0, 3.0)), Knob("B", (10.0, 20.0))],
            fixed={"C": 7},
        )

    def test_materialize_includes_fixed(self):
        config = self._space().materialize(np.array([0.0, 1.0]))
        assert config == {"A": 1.0, "B": 20.0, "C": 7}

    def test_materialize_shape_checked(self):
        with pytest.raises(ValueError):
            self._space().materialize(np.array([0.0]))

    def test_clip_bounds(self):
        space = self._space()
        clipped = space.clip(np.array([-3.0, 9.0]))
        assert list(clipped) == [0.0, 1.0]

    def test_random_vector_within_bounds(self):
        space = self._space()
        rng = np.random.default_rng(0)
        for _ in range(20):
            v = space.random_vector(rng)
            assert (v >= 0).all()
            assert (v <= space.upper_bounds()).all()

    def test_config_key_stable_under_rounding(self):
        space = self._space()
        k1 = space.config_key(np.array([1.1, 0.2]))
        k2 = space.config_key(np.array([0.9, 0.0]))
        assert k1 == k2

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            KnobSpace([Knob("A", (1.0,)), Knob("A", (2.0,))])

    def test_empty_space_rejected(self):
        with pytest.raises(ValueError):
            KnobSpace([])


class TestListingOneLattices:
    """The knob lattices must match Listing 1 of the paper."""

    def test_instruction_fractions(self):
        # Listing 1's 1..10 plus the documented 0 extension.
        assert INSTRUCTION_FRACTIONS == tuple(float(v) for v in range(0, 11))

    def test_mem_size_values(self):
        assert MEM_SIZE_VALUES == (2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048)

    def test_b_pattern_values(self):
        # Listing 1's 0.1..1.0 plus the documented fine-grained low end.
        assert B_PATTERN_VALUES[0] == 0.0
        assert B_PATTERN_VALUES[-1] == 1.0
        for v in (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0):
            assert v in B_PATTERN_VALUES
        assert all(a < b for a, b in zip(B_PATTERN_VALUES,
                                         B_PATTERN_VALUES[1:]))

    def test_mix_space_has_ten_knobs(self):
        space = instruction_mix_space()
        assert len(space) == 10
        assert tuple(space.names) == MIX_KNOB_NAMES

    def test_mix_space_pins_non_mix_knobs(self):
        config = instruction_mix_space().materialize(np.zeros(10))
        assert "REG_DIST" in config
        assert "B_PATTERN" in config

    def test_cloning_space_has_sixteen_knobs(self):
        assert len(default_cloning_space()) == 16

    def test_fixed_overrides_flow_through(self):
        space = instruction_mix_space(fixed={"REG_DIST": 7})
        config = space.materialize(np.zeros(10))
        assert config["REG_DIST"] == 7

    def test_full_stress_space_matches_cloning_space(self):
        assert full_stress_space().names == default_cloning_space().names
