"""Property-based tests for tuning invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tuning.brute import compositions
from repro.tuning.knobs import Knob, KnobSpace
from repro.tuning.loss import CloningLoss, metric_accuracy

positions = st.lists(
    st.floats(min_value=-50, max_value=50, allow_nan=False), min_size=1,
    max_size=8,
)


def _space_for(n):
    return KnobSpace([Knob(f"K{i}", tuple(range(1, 11))) for i in range(n)])


class TestKnobSpaceProperties:
    @given(positions)
    @settings(max_examples=80, deadline=None)
    def test_materialized_values_always_on_lattice(self, pos):
        space = _space_for(len(pos))
        config = space.materialize(space.clip(np.array(pos)))
        for value in config.values():
            assert value in set(range(1, 11))

    @given(positions)
    @settings(max_examples=50, deadline=None)
    def test_clip_is_idempotent(self, pos):
        space = _space_for(len(pos))
        once = space.clip(np.array(pos))
        twice = space.clip(once)
        assert np.allclose(once, twice)


class TestLossProperties:
    metric_values = st.dictionaries(
        st.sampled_from(["a", "b", "c"]),
        st.floats(min_value=0.001, max_value=100.0),
        min_size=3,
        max_size=3,
    )

    @given(metric_values, metric_values)
    @settings(max_examples=80, deadline=None)
    def test_cloning_loss_nonnegative(self, targets, measured):
        loss = CloningLoss(targets=targets)
        assert loss(measured) >= 0.0

    @given(metric_values)
    @settings(max_examples=40, deadline=None)
    def test_cloning_loss_zero_iff_match(self, targets):
        loss = CloningLoss(targets=targets)
        assert loss(dict(targets)) < 1e-9

    @given(
        st.floats(min_value=0.0, max_value=100.0),
        st.floats(min_value=0.0, max_value=100.0),
    )
    @settings(max_examples=80, deadline=None)
    def test_metric_accuracy_bounded(self, a, b):
        acc = metric_accuracy(a, b)
        assert 0.0 <= acc <= 1.0


class TestCompositionProperties:
    @given(
        st.integers(min_value=0, max_value=8),
        st.integers(min_value=1, max_value=5),
    )
    @settings(max_examples=40, deadline=None)
    def test_all_compositions_valid(self, total, parts):
        seen = set()
        for mix in compositions(total, parts):
            assert len(mix) == parts
            assert sum(mix) == total
            assert all(m >= 0 for m in mix)
            seen.add(mix)
        import math

        assert len(seen) == math.comb(total + parts - 1, parts - 1)
