"""Unit tests for the use-case loss functions."""

import math

import pytest

from repro.tuning.loss import (
    CloningLoss,
    StressLoss,
    accuracy_report,
    mean_accuracy,
    metric_accuracy,
)


class TestCloningLoss:
    def test_zero_at_exact_match(self):
        loss = CloningLoss(targets={"ipc": 1.5, "l1d_hit_rate": 0.9})
        assert loss({"ipc": 1.5, "l1d_hit_rate": 0.9}) == pytest.approx(0.0)

    def test_positive_away_from_target(self):
        loss = CloningLoss(targets={"ipc": 1.0})
        assert loss({"ipc": 2.0}) > 0.0

    def test_symmetric_in_ratio(self):
        loss = CloningLoss(targets={"ipc": 1.0})
        assert loss({"ipc": 2.0}) == pytest.approx(loss({"ipc": 0.5}), rel=0.05)

    def test_weights_shift_emphasis(self):
        targets = {"a": 1.0, "b": 1.0}
        plain = CloningLoss(targets=targets)
        weighted = CloningLoss(targets=targets, weights={"a": 10.0})
        off_a = {"a": 2.0, "b": 1.0}
        off_b = {"a": 1.0, "b": 2.0}
        assert plain(off_a) == pytest.approx(plain(off_b))
        assert weighted(off_a) > weighted(off_b)

    def test_missing_metric_raises(self):
        loss = CloningLoss(targets={"ipc": 1.0})
        with pytest.raises(KeyError):
            loss({"l2_hit_rate": 0.4})

    def test_empty_targets_rejected(self):
        with pytest.raises(ValueError):
            CloningLoss(targets={})

    def test_accuracy_target_maps_to_log_loss(self):
        # 99% uniform accuracy <=> loss of ln(0.99)^2.
        loss = CloningLoss(targets={"a": 1.0, "b": 2.0})
        measured = {"a": 0.99, "b": 1.98}
        assert loss(measured) == pytest.approx(
            math.log(0.99) ** 2, rel=0.05
        )


class TestStressLoss:
    def test_minimize_returns_metric(self):
        loss = StressLoss(metric="ipc", maximize=False)
        assert loss({"ipc": 2.5}) == 2.5

    def test_maximize_negates(self):
        loss = StressLoss(metric="dynamic_power", maximize=True)
        assert loss({"dynamic_power": 2.0}) == -2.0

    def test_missing_metric_raises(self):
        with pytest.raises(KeyError):
            StressLoss(metric="ipc")({"power": 1.0})


class TestAccuracy:
    def test_exact_match_is_one(self):
        assert metric_accuracy(0.5, 0.5) == pytest.approx(1.0)

    def test_symmetric(self):
        assert metric_accuracy(1.0, 2.0) == pytest.approx(
            metric_accuracy(2.0, 1.0)
        )

    def test_both_zero_is_one(self):
        assert metric_accuracy(0.0, 0.0) == 1.0

    def test_report_is_ratio(self):
        report = accuracy_report({"ipc": 1.2}, {"ipc": 1.0})
        assert report["ipc"] == pytest.approx(1.2, rel=0.01)

    def test_mean_accuracy_averages(self):
        targets = {"a": 1.0, "b": 1.0}
        metrics = {"a": 1.0, "b": 0.5}
        assert mean_accuracy(metrics, targets) == pytest.approx(0.75, abs=0.01)

    def test_missing_metric_counts_as_zero(self):
        assert mean_accuracy({}, {"a": 1.0}) < 0.01
