"""Shared fixtures: fast synthetic optimization problems (no simulator)."""

import numpy as np
import pytest

from repro.tuning.evaluator import Evaluator
from repro.tuning.knobs import Knob, KnobSpace
from repro.tuning.loss import StressLoss

LATTICE = tuple(float(v) for v in range(10))


def make_quadratic_problem(targets=(3.0, 7.0, 5.0)):
    """A knob space + evaluator whose loss minimum sits at ``targets``."""
    knobs = [Knob(f"K{i}", LATTICE) for i in range(len(targets))]
    space = KnobSpace(knobs)

    def evaluate(config):
        y = sum(
            (config[f"K{i}"] - t) ** 2 for i, t in enumerate(targets)
        )
        return {"y": y}

    return space, Evaluator(space, evaluate), StressLoss(metric="y")


def make_multimodal_problem():
    """A problem with a deceptive local minimum at the origin.

    Global minimum at (8, 8) with value 0; local basin at (1, 1) with
    value 2.
    """
    knobs = [Knob("A", LATTICE), Knob("B", LATTICE)]
    space = KnobSpace(knobs)

    def evaluate(config):
        a, b = config["A"], config["B"]
        global_basin = (a - 8) ** 2 + (b - 8) ** 2
        local_basin = (a - 1) ** 2 + (b - 1) ** 2 + 2.0
        return {"y": min(global_basin, local_basin)}

    return space, Evaluator(space, evaluate), StressLoss(metric="y")


@pytest.fixture
def quadratic_problem():
    return make_quadratic_problem()


@pytest.fixture
def multimodal_problem():
    return make_multimodal_problem()


@pytest.fixture
def rng():
    return np.random.default_rng(0)
