"""Unit tests for brute-force search and the class-mix lattice."""

import math

import pytest

from repro.tuning.brute import BruteForceSearch, class_mix_configs, compositions

from tests.tuning.conftest import make_quadratic_problem


class TestCompositions:
    @pytest.mark.parametrize("total,parts", [(4, 2), (10, 5), (3, 3), (0, 2)])
    def test_count_matches_stars_and_bars(self, total, parts):
        expected = math.comb(total + parts - 1, parts - 1)
        assert sum(1 for _ in compositions(total, parts)) == expected

    def test_every_composition_sums_to_total(self):
        for mix in compositions(7, 4):
            assert sum(mix) == 7
            assert all(m >= 0 for m in mix)

    def test_single_part(self):
        assert list(compositions(5, 1)) == [(5,)]

    def test_compositions_are_unique(self):
        mixes = list(compositions(6, 3))
        assert len(mixes) == len(set(mixes))


class TestClassMixConfigs:
    def test_count_is_simplex_lattice(self):
        configs = class_mix_configs(total=10)
        # C(14,4) compositions of 10 into 5 parts (none all-zero).
        assert len(configs) == math.comb(14, 4)

    def test_float_share_on_class_representative(self):
        configs = class_mix_configs(total=10)
        sample = next(c for c in configs if c["FMULD"] > 0)
        # One representative mnemonic per class: the whole float share
        # rides on FMUL.D and the tuner's class space matches.
        assert "FADDD" not in sample or sample.get("FADDD", 0) == 0

    def test_fixed_knobs_applied(self):
        configs = class_mix_configs(total=4, fixed={"REG_DIST": 3})
        assert all(c["REG_DIST"] == 3 for c in configs)

    def test_each_config_generates_valid_program(self):
        from repro.codegen import generate_test_case
        from repro.codegen.wrapper import GenerationOptions

        for config in class_mix_configs(total=2)[:10]:
            generate_test_case(
                config, GenerationOptions(loop_size=60)
            ).validate()


class TestBruteForceSearch:
    def test_finds_the_global_minimum(self):
        space, evaluator, loss = make_quadratic_problem((3.0, 7.0, 5.0))
        grid = [
            {"K0": a, "K1": b, "K2": c}
            for a in (1.0, 3.0, 5.0)
            for b in (5.0, 7.0)
            for c in (5.0,)
        ]
        result = BruteForceSearch(evaluator, loss, grid).run()
        assert result.best_config == {"K0": 3.0, "K1": 7.0, "K2": 5.0}
        assert result.best_loss == 0.0
        assert result.converged
        assert result.stop_reason == "exhausted"

    def test_evaluation_count_equals_grid_size(self):
        space, evaluator, loss = make_quadratic_problem()
        grid = [{"K0": v, "K1": 0.0, "K2": 0.0} for v in range(5)]
        result = BruteForceSearch(evaluator, loss, grid).run()
        assert result.requested_evaluations == 5

    def test_empty_grid_rejected(self):
        space, evaluator, loss = make_quadratic_problem()
        with pytest.raises(ValueError):
            BruteForceSearch(evaluator, loss, [])
