"""Config-batched event engine benchmark: 16-core sweep + hard cases.

Not a paper figure: this benchmark records the second engineering win of
the numpy event engine.  One streaming program is evaluated under a
16-config sweep (4 distinct L1D/L2 hierarchies x 2 branch predictors x 2
name twins, the ``run_many`` shape used by ``CoreSensitivityAnalysis``)
three ways: the ``reference`` per-access Python loops, the vectorized
engine evaluating each config separately (``config_batch=False``), and
the config-batched engine evaluating every distinct event key over one
shared block of precomputed trace columns (``config_batch=True``).  The
batched sweep must be bit-identical to both and clear the gates below.

The workload deliberately hits the two cases that used to fall back to
reference speed and are now first-class vectorized paths:

* **Aperiodic memory streams** — MEM_SIZE far exceeds the caches, so the
  expanded trace has no period within the simulated window; the exact
  aperiodic path (set-parallel LRU recency-rank rounds kernel +
  run-compressed TLB replay) must carry the whole sweep with no
  ``memory.vectorized.straight`` or ``memory.reference`` fallbacks.
* **Tournament predictors** — chooser + bimodal + gshare evaluated as
  parallel clamp-monoid scans over a shared uint16 radix-sorted layout;
  gated separately against the reference loop on a branch-heavy trace.

Times land in ``results/BENCH_batch.json`` (uploaded as a CI artifact)
so the speedups are tracked across runs.
"""

import time
from dataclasses import replace

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.sim import Simulator, TraceArtifactCache
from repro.sim.artifact import TraceArtifact
from repro.sim.config import CacheGeometry, core_by_name
from repro.sim.events import (
    engine_path_counts,
    reset_engine_path_counts,
    simulate_branches,
)

from harness import print_header, save_artifact

#: Batched vs per-config vectorized sweep: the batch pass only saves
#: redundant trace-column work, so the bar is lower than vs reference.
BATCH_SPEEDUP_TARGET = 2.0
#: Batched sweep vs the reference per-access loops.
REFERENCE_SPEEDUP_TARGET = 3.0
#: Tournament predictor: vectorized vs reference on one branch-heavy
#: trace (the case that previously fell back to reference speed).
TOURNAMENT_SPEEDUP_TARGET = 3.0
#: Instruction budget: saturates the adaptive schedule, the regime where
#: the event loops dominate a tuning run; independent of quick/full mode
#: so the recorded speedups are comparable across runs.
INSTRUCTIONS = 800_000
#: Loop size for the memory sweep: large enough that the streaming
#: footprint defeats period detection (exact aperiodic path).
SWEEP_LOOP_SIZE = 680
#: Loop size for the tournament gate: more distinct branch PCs means
#: more predictor-table segments and shorter sequential scan rounds.
TOURNAMENT_LOOP_SIZE = 2040
#: Timing repetitions per arm; the best run is recorded so scheduler
#: noise on loaded CI hosts cannot fake a regression.
REPEATS = 2

#: Streaming workload: a 2 MB footprint walks far past every L1/L2 in
#: the sweep, and the MEM_TEMP2=7 reuse cadence is coprime with the
#: loop body, so the expanded memory trace never repeats inside the
#: simulated window — the period detector fails and the exact
#: aperiodic kernels carry the whole sweep.
SWEEP_KNOBS = dict(ADD=4, MUL=1, FADDD=1, FMULD=1, BEQ=2, BNE=1,
                   LD=3, LW=1, SD=1, SW=1,
                   REG_DIST=4, MEM_SIZE=2048, MEM_STRIDE=64,
                   MEM_TEMP1=2, MEM_TEMP2=7, B_PATTERN=0.3)

#: Branch-heavy variant for the tournament gate: doubled branch share
#: and a biased pattern exercise chooser traffic in both directions.
TOURNAMENT_KNOBS = dict(SWEEP_KNOBS, BEQ=4, BNE=2)

#: Paths that must never appear in the batched sweep: the whole point
#: of this PR is that streaming traces and tournament predictors no
#: longer fall back to per-access loops.
FORBIDDEN_PATHS = (
    "memory.reference",
    "memory.vectorized.straight",
    "branch.reference",
)


def sweep_cores():
    """A 16-config sensitivity sweep around the Small core.

    Eight distinct L1D/L2 hierarchies — the L1 variants all share 64
    sets and the L2 variants 512 sets, so the batch pass shares index
    columns and recency ranks across every key — each under the
    default gshare predictor and a ``-tournament`` twin.
    """
    base = core_by_name("small")
    l1 = [CacheGeometry(8 * 1024, 2, latency=3),
          CacheGeometry(16 * 1024, 4, latency=3),
          CacheGeometry(32 * 1024, 8, latency=3)]
    l2 = [CacheGeometry(128 * 1024, 4, latency=12),
          CacheGeometry(256 * 1024, 8, latency=12),
          CacheGeometry(512 * 1024, 16, latency=12)]
    hierarchies = [(a, b) for a in l1 for b in l2][:8]
    cores = []
    for i, (l1d, l2_geom) in enumerate(hierarchies):
        for suffix in ("", "-tournament"):
            cores.append(replace(base, name=f"small-v{i}{suffix}",
                                 l1d=l1d, l2=l2_geom))
    return cores


def timed_sweep(cores, program, engine, config_batch):
    """Best-of-N wall time for the sweep under one engine arm.

    Every repetition uses a fresh artifact cache, so each one pays the
    full stage-1 + stage-2 pipeline and nothing leaks between arms.
    """
    best_s = float("inf")
    stats = None
    for _ in range(REPEATS):
        cache = TraceArtifactCache(maxsize=2)
        start = time.perf_counter()
        stats = Simulator.run_many(
            cores,
            program,
            instructions=INSTRUCTIONS,
            artifact_cache=cache,
            engine=engine,
            config_batch=config_batch,
        )
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, stats


def timed_branches(core, trace, warmup, engine, repeats=5):
    """Best-of-N wall time for one branch event simulation."""
    best_s = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = simulate_branches(core, trace, warmup, engine=engine)
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, result


class TestConfigBatch:
    def test_batched_sweep_beats_per_config_and_reference(self):
        print_header(
            "Config-batched event engine: 16-core streaming sweep + "
            "tournament gate",
            f"engineering targets: >={BATCH_SPEEDUP_TARGET}x vs "
            f"per-config, >={REFERENCE_SPEEDUP_TARGET}x vs reference, "
            f">={TOURNAMENT_SPEEDUP_TARGET}x tournament, bit-identical",
        )
        program = generate_test_case(
            SWEEP_KNOBS, GenerationOptions(loop_size=SWEEP_LOOP_SIZE)
        )
        cores = sweep_cores()

        # Warm the interpreter/allocator so no arm pays first-run costs;
        # fresh caches inside timed_sweep keep the pipeline itself cold.
        Simulator(cores[0]).run(program, instructions=INSTRUCTIONS)

        # The hard case in isolation, measured before the sweep floods
        # the allocator: one tournament-predictor branch simulation,
        # vectorized vs the reference Python loop.
        t_program = generate_test_case(
            TOURNAMENT_KNOBS,
            GenerationOptions(loop_size=TOURNAMENT_LOOP_SIZE),
        )
        artifact = TraceArtifact.build(t_program, INSTRUCTIONS)
        t_core = replace(core_by_name("small"), name="small-tournament")
        warmup_iters, measured_iters = artifact.schedule(t_core, 0.2)
        trace = artifact.trace(
            warmup_iters + measured_iters, t_core.l1d.line_bytes
        )
        t_warmup = warmup_iters * artifact.br_per_iter
        t_vec_s, t_vec = timed_branches(t_core, trace, t_warmup,
                                        "vectorized")
        t_ref_s, t_ref = timed_branches(t_core, trace, t_warmup,
                                        "reference")
        tournament_speedup = t_ref_s / max(t_vec_s, 1e-9)

        reference_s, reference = timed_sweep(
            cores, program, "reference", config_batch=False
        )
        per_config_s, per_config = timed_sweep(
            cores, program, "vectorized", config_batch=False
        )
        reset_engine_path_counts()
        batched_s, batched = timed_sweep(
            cores, program, "vectorized", config_batch=True
        )
        paths = engine_path_counts()

        batch_speedup = per_config_s / max(batched_s, 1e-9)
        reference_speedup = reference_s / max(batched_s, 1e-9)

        print(f"cores        : {len(cores)} configurations "
              f"(streaming footprint, aperiodic)")
        print(f"instructions : {INSTRUCTIONS}")
        print(f"reference    : {reference_s:6.3f} s  (per-access loops)")
        print(f"per-config   : {per_config_s:6.3f} s  (vectorized, "
              f"config_batch=False)")
        print(f"batched      : {batched_s:6.3f} s  (vectorized, "
              f"config_batch=True)")
        print(f"speedups     : {batch_speedup:5.2f}x vs per-config, "
              f"{reference_speedup:5.2f}x vs reference")
        print(f"tournament   : ref {t_ref_s * 1e3:6.1f} ms  "
              f"vec {t_vec_s * 1e3:6.1f} ms  "
              f"({tournament_speedup:5.2f}x, "
              f"{trace.branch_outcomes.shape[0]} branches)")
        print(f"engine paths : {sorted(paths)}")
        save_artifact("BENCH_batch", {
            "cores": len(cores),
            "instructions": INSTRUCTIONS,
            "sweep_loop_size": SWEEP_LOOP_SIZE,
            "tournament_loop_size": TOURNAMENT_LOOP_SIZE,
            "reference_s": reference_s,
            "per_config_s": per_config_s,
            "batched_s": batched_s,
            "batch_speedup": batch_speedup,
            "reference_speedup": reference_speedup,
            "tournament_reference_s": t_ref_s,
            "tournament_vectorized_s": t_vec_s,
            "tournament_speedup": tournament_speedup,
            "engine_paths": paths,
            "bit_identical": batched == per_config == reference,
            "tournament_bit_identical": t_vec == t_ref,
        })

        assert batched == per_config == reference  # bit-identical stats
        assert t_vec == t_ref
        for forbidden in FORBIDDEN_PATHS:
            assert not paths.get(forbidden), (
                f"batched sweep fell back to {forbidden}: {paths}"
            )
        assert paths.get("memory.vectorized.aperiodic"), (
            f"expected the exact aperiodic path to carry the sweep: "
            f"{paths}"
        )
        assert batch_speedup >= BATCH_SPEEDUP_TARGET, (
            f"expected >={BATCH_SPEEDUP_TARGET}x from config batching, "
            f"got {batch_speedup:.2f}x"
        )
        assert reference_speedup >= REFERENCE_SPEEDUP_TARGET, (
            f"expected >={REFERENCE_SPEEDUP_TARGET}x vs reference, "
            f"got {reference_speedup:.2f}x"
        )
        assert tournament_speedup >= TOURNAMENT_SPEEDUP_TARGET, (
            f"expected >={TOURNAMENT_SPEEDUP_TARGET}x on the tournament "
            f"predictor, got {tournament_speedup:.2f}x"
        )
