"""Vectorized vs reference stage-2 event engine benchmark.

Not a paper figure: this benchmark records the engineering win of the
numpy event engine.  One generated program is evaluated under an
eight-config cache-sensitivity sweep (the ``run_many`` shape used by
``CoreSensitivityAnalysis``/``CoreBottleneckAnalysis``, where every
config has a distinct hierarchy and therefore its own stage-2 memory
simulation) twice — once with the ``reference`` per-access Python loops
and once with the ``vectorized`` engine (precomputed array indices,
steady-state period extrapolation, segmented gshare scan).  The
vectorized sweep must be bit-identical and at least 3x faster; the
measured times land in ``results/BENCH_events.json`` so the speedup is
tracked across runs (and uploaded as a CI artifact).

The workload is an L2-resident reuse loop (16 KB footprint, the regime
the adaptive warmup replays for hundreds of identical iterations), so
this benchmark exercises the steady-state periodic path; the streaming
(aperiodic) and tournament-predictor cases plus config batching are
gated separately in ``benchmarks/test_config_batch.py``.
"""

import time
from dataclasses import replace

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.sim import Simulator, TraceArtifactCache
from repro.sim.config import CacheGeometry, core_by_name

from harness import print_header, save_artifact

SPEEDUP_TARGET = 3.0
#: Instruction budget: saturates the adaptive schedule (400 warmup +
#: 160 measured iterations), the regime where the event loops dominate
#: a tuning run; independent of quick/full mode so the recorded speedup
#: is comparable across runs.
INSTRUCTIONS = 800_000
#: Loop size: sized so the collective stream advances a highly composite
#: 120 positions per iteration, giving the expanded trace a short exact
#: period for the engine's steady-state detection to find.
LOOP_SIZE = 340
#: Timing repetitions per engine; the best run is recorded so scheduler
#: noise on loaded CI hosts cannot fake a regression.
REPEATS = 2

KNOBS = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=2, BNE=1,
             LD=3, LW=1, SD=1, SW=1,
             REG_DIST=4, MEM_SIZE=16, MEM_STRIDE=64,
             MEM_TEMP1=2, MEM_TEMP2=1, B_PATTERN=0.3)


def sweep_cores():
    """An 8-config cache-sensitivity sweep around the Large core: L1D
    size/associativity and L2 capacity variants, each with a distinct
    ``memory_event_key`` and therefore its own event simulation."""
    base = core_by_name("large")
    return [
        base,
        replace(base, l1d=CacheGeometry(16 * 1024, 4, latency=4)),
        replace(base, l1d=CacheGeometry(8 * 1024, 2, latency=4)),
        replace(base, l1d=CacheGeometry(64 * 1024, 8, latency=4)),
        replace(base, l2=CacheGeometry(256 * 1024, 8, latency=14)),
        replace(base, l2=CacheGeometry(512 * 1024, 8, latency=14)),
        replace(base, l2=CacheGeometry(2 * 1024 * 1024, 16, latency=14)),
        replace(base, l1d=CacheGeometry(16 * 1024, 4, latency=4),
                l2=CacheGeometry(512 * 1024, 8, latency=14)),
    ]


def timed_sweep(cores, program, engine):
    """Best-of-N wall time for the sweep under one engine.

    Every repetition uses a fresh artifact cache, so each one pays the
    full stage-1 + stage-2 pipeline and nothing leaks between engines.
    """
    best_s = float("inf")
    stats = None
    for _ in range(REPEATS):
        cache = TraceArtifactCache(maxsize=2)
        start = time.perf_counter()
        stats = Simulator.run_many(
            cores,
            program,
            instructions=INSTRUCTIONS,
            artifact_cache=cache,
            engine=engine,
        )
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, stats


class TestEventEngine:
    def test_vectorized_engine_beats_reference(self):
        print_header(
            "Stage-2 event engine: 8-config cache sweep, "
            "reference vs vectorized",
            f"engineering target: >={SPEEDUP_TARGET}x, bit-identical",
        )
        program = generate_test_case(
            KNOBS, GenerationOptions(loop_size=LOOP_SIZE)
        )
        cores = sweep_cores()

        # Warm the interpreter/allocator so neither arm pays first-run
        # costs; fresh caches inside timed_sweep keep the measured
        # pipeline itself cold.
        Simulator(cores[0]).run(program, instructions=INSTRUCTIONS)

        reference_s, reference = timed_sweep(cores, program, "reference")
        vectorized_s, vectorized = timed_sweep(cores, program, "vectorized")

        speedup = reference_s / max(vectorized_s, 1e-9)
        print(f"cores       : {len(cores)} configurations")
        print(f"instructions: {INSTRUCTIONS}")
        print(f"reference   : {reference_s:6.3f} s  (per-access loops)")
        print(f"vectorized  : {vectorized_s:6.3f} s  (array kernels + "
              f"steady-state extrapolation)")
        print(f"speedup     : {speedup:5.2f}x")
        save_artifact("BENCH_events", {
            "cores": len(cores),
            "instructions": INSTRUCTIONS,
            "loop_size": LOOP_SIZE,
            "reference_s": reference_s,
            "vectorized_s": vectorized_s,
            "speedup": speedup,
            "bit_identical": vectorized == reference,
        })

        assert vectorized == reference  # bit-identical SimStats
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >={SPEEDUP_TARGET}x from the vectorized engine, "
            f"got {speedup:.2f}x"
        )
