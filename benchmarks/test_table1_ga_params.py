"""Table I — the genetic-algorithm tuning parameters.

Regenerates the configuration table the paper reproduces from prior work
(GeST) and uses for every GA comparison, and times one GA generation so
the per-epoch cost asymmetry (population size vs 2 x knobs) is visible in
the benchmark report.
"""

import numpy as np

from repro.tuning.evaluator import Evaluator
from repro.tuning.genetic import GAParams, GeneticTuner
from repro.tuning.knobs import Knob, KnobSpace
from repro.tuning.loss import StressLoss

from benchmarks.harness import print_header

PAPER_TABLE_I = {
    "Population Size": 50,
    "Mutation Rate": "3%",
    "Crossover Operator": "1-point",
    "Crossover Rate": "100%",
    "Elitism": True,
    "Tournament Size": 5,
}


def test_table1_ga_parameters(benchmark):
    """The GA defaults must reproduce Table I verbatim."""
    params = GAParams()
    print_header(
        "Table I: GA parameters",
        "population 50, 3% mutation, 1-point crossover @ 100%, "
        "elitism, tournament 5",
    )
    rows = {
        "Population Size": params.population_size,
        "Mutation Rate": f"{params.mutation_rate:.0%}",
        "Crossover Operator": "1-point",
        "Crossover Rate": f"{params.crossover_rate:.0%}",
        "Elitism": params.elitism,
        "Tournament Size": params.tournament_size,
    }
    for key, expected in PAPER_TABLE_I.items():
        print(f"{key:<20} paper={expected!s:<8} measured={rows[key]!s:<8}")
        assert rows[key] == expected

    # Benchmark: one full GA generation on a 25-knob problem (Table I's
    # individual size) with a trivial loss, isolating GA overhead.
    space = KnobSpace(
        [Knob(f"K{i}", tuple(float(v) for v in range(10))) for i in range(25)]
    )
    evaluator = Evaluator(
        space, lambda config: {"y": float(sum(config.values()))}, cache=False
    )
    loss = StressLoss(metric="y")

    def one_generation():
        evaluator.reset_counters()  # benchmark reruns share the evaluator
        tuner = GeneticTuner(
            evaluator, loss, GAParams(max_epochs=1), seed=0
        )
        return tuner.run().requested_evaluations

    evals = benchmark(one_generation)
    assert evals == GAParams().population_size
