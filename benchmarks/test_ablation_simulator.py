"""Ablation benches for the simulation substrate's design choices.

Quantifies the substitutions DESIGN.md documents: the short periodic
measurement window versus the paper's 10M-instruction runs (metric
convergence), and the Large core's L2 stride prefetcher (Table II's
"+ prefetch").
"""

import pytest

from repro.codegen import generate_test_case
from repro.sim import LARGE_CORE, SMALL_CORE, Simulator
from repro.sim.config import custom_core

from benchmarks.harness import print_header

_KNOBS = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1, LD=3, LW=1,
              SD=1, SW=1, REG_DIST=6, MEM_SIZE=128, MEM_STRIDE=64,
              MEM_TEMP1=4, MEM_TEMP2=2, B_PATTERN=0.2)


def test_ablation_window_convergence():
    """Metrics measured at the default budget must match a 10x-larger
    window: the justification for not running 10M instructions."""
    program = generate_test_case(_KNOBS)
    sim = Simulator(SMALL_CORE)
    short = sim.run(program, instructions=20_000)
    long = sim.run(program, instructions=200_000)
    print_header(
        "Ablation: measurement window",
        "paper runs 10M dynamic instructions; periodic loops converge "
        "orders of magnitude earlier",
    )
    print(f"{'metric':<18} {'20k window':>12} {'200k window':>12}")
    for key, short_v in short.metrics().items():
        long_v = long.metrics()[key]
        print(f"{key:<18} {short_v:>12.4f} {long_v:>12.4f}")
        # The gshare predictor keeps refining over very long windows,
        # dragging the mispredict rate (and through it the IPC) slightly;
        # everything else converges exactly.
        assert short_v == pytest.approx(long_v, abs=0.08), key


def test_ablation_prefetcher():
    """Table II gives the Large core '1M + prefetch'; quantify it."""
    streaming = dict(_KNOBS, MEM_SIZE=2048, MEM_TEMP1=1, MEM_TEMP2=1)
    program = generate_test_case(streaming)
    with_pf = Simulator(LARGE_CORE).run(program, instructions=20_000)
    without_pf = Simulator(
        custom_core(LARGE_CORE, l2_prefetcher=False, name="large-nopf")
    ).run(program, instructions=20_000)
    print_header(
        "Ablation: L2 stride prefetcher (Large core)",
        "streaming workloads hit in L2 only thanks to the prefetcher",
    )
    print(f"with prefetcher   : L2 hit {with_pf.l2_hit_rate:.3f}, "
          f"IPC {with_pf.ipc:.3f}")
    print(f"without prefetcher: L2 hit {without_pf.l2_hit_rate:.3f}, "
          f"IPC {without_pf.ipc:.3f}")
    assert with_pf.l2_hit_rate > without_pf.l2_hit_rate
    assert with_pf.ipc >= without_pf.ipc


def test_ablation_predictor_size():
    """Core-scaled predictor tables: the Small core mispredicts more on
    the same hard branch pattern."""
    hard = dict(_KNOBS, B_PATTERN=0.3)
    program = generate_test_case(hard)
    small = Simulator(SMALL_CORE).run(program, instructions=20_000)
    large = Simulator(LARGE_CORE).run(program, instructions=20_000)
    print_header(
        "Ablation: branch predictor sizing",
        "the Large core's bigger gshare tables absorb more noise",
    )
    print(f"small core mispredict: {small.mispredict_rate:.3f}")
    print(f"large core mispredict: {large.mispredict_rate:.3f}")
    assert large.mispredict_rate <= small.mispredict_rate + 0.02


@pytest.mark.parametrize("instructions", [5_000, 20_000, 80_000])
def test_simulation_scaling(benchmark, instructions):
    """Evaluation cost versus instruction budget (near-linear)."""
    program = generate_test_case(_KNOBS)
    sim = Simulator(SMALL_CORE)
    stats = benchmark(lambda: sim.run(program, instructions=instructions))
    assert stats.instructions > 0
