"""Shared experiment harness for the paper-regeneration benchmarks.

Each ``benchmarks/test_*`` module regenerates one table or figure of the
paper.  This module holds the common machinery: experiment runners for
cloning (Figs 2-4) and stress testing (Figs 5-6), the quick/full budget
switch, and row-printing helpers that emit paper-vs-measured tables into
the pytest output.

Budgets: the default **quick** mode trims epochs/instructions so the whole
benchmark suite runs in minutes; set ``MICROGRAD_BENCH_MODE=full`` for
paper-scale budgets (more epochs, larger windows, all eight benchmarks in
the GA comparison).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from repro.core.config import MicroGradConfig
from repro.core.framework import MicroGrad
from repro.tuning.knobs import MIX_KNOB_NAMES

FULL = os.environ.get("MICROGRAD_BENCH_MODE", "quick").lower() == "full"


@dataclass(frozen=True)
class Budgets:
    """Experiment budgets for the active mode."""

    cloning_epochs: int = 60 if FULL else 25
    cloning_instructions: int = 20_000 if FULL else 8_000
    cloning_loop: int = 500 if FULL else 300
    stress_epochs: int = 45 if FULL else 30
    stress_instructions: int = 20_000 if FULL else 8_000
    stress_loop: int = 500 if FULL else 300
    brute_total: int = 10 if FULL else 6
    ga_benchmarks: int = 8 if FULL else 4


BUDGETS = Budgets()

#: Cloning metrics reported on the radar plots of Figs 2-4.
RADAR_METRICS = (
    "integer", "load", "store", "branch", "mispredict_rate",
    "l1i_hit_rate", "l1d_hit_rate", "l2_hit_rate", "ipc",
)


def clone_benchmark(
    benchmark: str, core: str, tuner: str, seed: int = 0,
    max_epochs: int | None = None,
):
    """Run one cloning experiment; returns the MicroGrad result."""
    config = MicroGradConfig(
        use_case="cloning",
        application=benchmark,
        core=core,
        tuner=tuner,
        metrics=RADAR_METRICS,
        max_epochs=max_epochs or BUDGETS.cloning_epochs,
        loop_size=BUDGETS.cloning_loop,
        instructions=BUDGETS.cloning_instructions,
        seed=seed,
    )
    return MicroGrad(config).run()


def clone_suite(benchmarks, core: str, tuner: str, seed: int = 0,
                epochs_per_benchmark: dict | None = None):
    """Clone a list of benchmarks in parallel worker processes.

    Cloning runs are independent, so the suite fans out across CPUs;
    results come back in benchmark order.
    """
    from concurrent.futures import ProcessPoolExecutor

    workers = min(len(benchmarks), max(1, (os.cpu_count() or 2) - 1))
    jobs = [
        (name, core, tuner, seed,
         (epochs_per_benchmark or {}).get(name))
        for name in benchmarks
    ]
    with ProcessPoolExecutor(max_workers=workers) as pool:
        results = list(pool.map(_clone_job, jobs))
    return dict(zip(benchmarks, results))


def _clone_job(job):
    name, core, tuner, seed, max_epochs = job
    return clone_benchmark(name, core, tuner, seed=seed,
                           max_epochs=max_epochs)


#: Fixed non-mix knobs of the compute-focused scenario.  The mix is
#: class-level (one representative mnemonic per class) so the GD, GA and
#: brute-force searches all span exactly the same space; the unused
#: mnemonics are pinned to 0.
STRESS_FIXED = {
    "REG_DIST": 10, "MEM_SIZE": 16, "MEM_STRIDE": 64,
    "MEM_TEMP1": 1, "MEM_TEMP2": 1, "B_PATTERN": 0.1,
    "MUL": 0, "FADDD": 0, "BNE": 0, "LW": 0, "SW": 0,
}


def stress_config(
    metric: str, maximize: bool, core: str, tuner: str,
    max_epochs: int | None = None, seed: int = 0,
) -> MicroGradConfig:
    """The Fig 5/6 stress scenario: instruction-fraction knobs only."""
    from repro.tuning.brute import CLASS_KNOB_NAMES

    return MicroGradConfig(
        use_case="stress",
        metrics=(metric,),
        maximize=maximize,
        core=core,
        tuner=tuner,
        knobs=CLASS_KNOB_NAMES,
        fixed_knobs=dict(STRESS_FIXED),
        max_epochs=max_epochs or BUDGETS.stress_epochs,
        loop_size=BUDGETS.stress_loop,
        instructions=BUDGETS.stress_instructions,
        with_power="power" in metric,
        seed=seed,
    )


def run_stress(metric: str, maximize: bool, core: str, tuner: str,
               max_epochs: int | None = None, seed: int = 0):
    """Run one stress experiment; returns the MicroGrad result."""
    return MicroGrad(
        stress_config(metric, maximize, core, tuner, max_epochs, seed)
    ).run()


def brute_force_stress(metric: str, maximize: bool, core: str):
    """Brute-force oracle over the class-mix simplex (the green lines)."""
    from repro.core.framework import MicroGrad as _MG
    from repro.tuning.brute import BruteForceSearch, class_mix_configs
    from repro.tuning.loss import StressLoss

    config = stress_config(metric, maximize, core, tuner="gd")
    mg = _MG(config)
    configs = class_mix_configs(
        total=BUDGETS.brute_total,
        fixed=dict(config.fixed_knobs),
    )
    evaluator = mg.build_evaluator()
    loss = StressLoss(metric=metric, maximize=maximize)
    try:
        return BruteForceSearch(evaluator, loss, configs).run()
    finally:
        mg.close()


# ---------------------------------------------------------------------------
# reporting helpers
# ---------------------------------------------------------------------------

#: Where regenerated experiment data lands (JSON, one file per figure).
RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def save_artifact(name: str, payload: dict) -> Path:
    """Persist one experiment's measured data under ``results/``.

    The benchmark prints remain the human-readable record; the JSON
    artifact is the machine-readable one (for plotting or regression
    comparison across runs).
    """
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"{name}.json"
    payload = dict(payload)
    payload["mode"] = "full" if FULL else "quick"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def radar_payload(results: dict) -> dict:
    """JSON-able Fig 2/3/4 data: per-benchmark ratios and epochs."""
    return {
        name: {
            "accuracy": result.accuracy,
            "mean_accuracy": result.mean_accuracy,
            "epochs": result.tuning.epochs,
            "evaluations": result.tuning.requested_evaluations,
        }
        for name, result in results.items()
    }

def print_header(title: str, paper_claim: str) -> None:
    """Banner identifying the experiment and the paper's claim."""
    print()
    print("=" * 78)
    print(title)
    print(f"paper: {paper_claim}")
    print(f"mode : {'full' if FULL else 'quick'}")
    print("=" * 78)


def print_radar_row(benchmark: str, result) -> None:
    """One Fig 2/3/4 row: per-metric measured/target ratios + epochs."""
    ratios = " ".join(
        f"{result.accuracy.get(m, 0.0):5.2f}" for m in RADAR_METRICS
    )
    print(
        f"{benchmark:<11} {ratios}  | mean acc {result.mean_accuracy:5.3f} "
        f"epochs {result.tuning.epochs:>3}"
    )


def radar_legend() -> None:
    print(f"{'benchmark':<11} "
          + " ".join(f"{m[:5]:>5}" for m in RADAR_METRICS)
          + "  | (ratio clone/target; 1.00 = exact)")


def mean_error(result) -> float:
    """Mean absolute radar deviation from 1.0 (the 'error' of Section IV)."""
    devs = [abs(result.accuracy.get(m, 0.0) - 1.0) for m in RADAR_METRICS]
    return sum(devs) / len(devs)


def worst_error(result) -> float:
    """Worst per-metric radar deviation from 1.0."""
    return max(abs(result.accuracy.get(m, 0.0) - 1.0) for m in RADAR_METRICS)
