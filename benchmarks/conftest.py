"""Benchmark-suite conftest.

``pytest benchmarks/ --benchmark-only`` deselects tests that do not use
the ``benchmark`` fixture.  The experiment-regeneration tests here *are*
the deliverable (they print the paper-vs-measured tables), so an autouse
fixture attaches the benchmark machinery to every test: tests that
benchmark a meaningful unit themselves are untouched, and the rest get a
timing of their own assertion body via a no-op sample so they run (and
report) under ``--benchmark-only``.
"""

import pytest


@pytest.fixture(autouse=True)
def _always_benchmarked(request):
    """Ensure every benchmarks/ test participates in --benchmark-only."""
    yield
    if "benchmark" in request.fixturenames:
        return
    # Unreachable: requesting `benchmark` below adds it to fixturenames.


def pytest_collection_modifyitems(config, items):
    """Treat every test in this package as benchmark-enabled.

    pytest-benchmark's --benchmark-only mode skips tests whose fixture
    list lacks ``benchmark``; experiment tests regenerate the paper's
    tables/figures and must run either way, so inject the fixture name.
    """
    for item in items:
        fixturenames = getattr(item, "fixturenames", None)
        if fixturenames is not None and "benchmark" not in fixturenames:
            fixturenames.append("benchmark")
