"""Serial-vs-pool wall-clock harness for the batched evaluation engine.

Not a paper figure: this benchmark records the engineering win of the
``repro.exec`` execution backends.  A brute-force class-mix grid sweep —
the most evaluation-bound workload in the repo — runs once on the serial
backend and once on a 4-worker process pool; both must produce identical
metrics, and on hosts with at least 4 cores the pool must be >1.5x
faster.  The measured times land in ``results/parallel_speedup.json`` so
speedup trajectories are tracked across runs alongside the paper data.
"""

import os
import time

import pytest

from repro.codegen.wrapper import GenerationOptions
from repro.core.platform import PerformancePlatform
from repro.exec.backend import ProcessPoolBackend, SerialBackend
from repro.exec.jobs import evaluate_configs
from repro.sim.config import core_by_name
from repro.tuning.brute import class_mix_configs

from harness import BUDGETS, print_header, save_artifact

POOL_WORKERS = 4
SPEEDUP_TARGET = 1.5


class TestParallelSpeedup:
    def test_pool_sweep_matches_serial_and_records_speedup(self):
        print_header(
            "Parallel evaluation engine: brute-force sweep, serial vs pool",
            f"engineering target: >{SPEEDUP_TARGET}x on {POOL_WORKERS} workers",
        )
        platform = PerformancePlatform(
            core_by_name("large"), instructions=BUDGETS.stress_instructions
        )
        options = GenerationOptions(loop_size=BUDGETS.stress_loop)
        configs = class_mix_configs(total=BUDGETS.brute_total)

        start = time.perf_counter()
        serial_metrics = evaluate_configs(
            SerialBackend(), platform, options, configs
        )
        serial_s = time.perf_counter() - start

        with ProcessPoolBackend(jobs=POOL_WORKERS) as pool:
            pool.map(len, [[], []])  # warm the workers up front
            start = time.perf_counter()
            pool_metrics = evaluate_configs(pool, platform, options, configs)
            pool_s = time.perf_counter() - start

        speedup = serial_s / max(pool_s, 1e-9)
        cores = os.cpu_count() or 1
        print(f"grid     : {len(configs)} configurations")
        print(f"serial   : {serial_s:6.2f} s")
        print(f"pool[{POOL_WORKERS}]  : {pool_s:6.2f} s  "
              f"(host cores: {cores})")
        print(f"speedup  : {speedup:5.2f}x")
        save_artifact("parallel_speedup", {
            "configs": len(configs),
            "workers": POOL_WORKERS,
            "host_cores": cores,
            "serial_s": serial_s,
            "pool_s": pool_s,
            "speedup": speedup,
        })

        assert pool_metrics == serial_metrics  # bit-identical results
        if cores >= POOL_WORKERS:
            assert speedup > SPEEDUP_TARGET, (
                f"expected >{SPEEDUP_TARGET}x on {cores} cores, "
                f"got {speedup:.2f}x"
            )
        else:
            pytest.skip(
                f"host has {cores} cores; speedup assertion needs "
                f">= {POOL_WORKERS} (measured {speedup:.2f}x, recorded)"
            )
