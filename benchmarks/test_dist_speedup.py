"""Distributed-backend harness: 2-worker localhost sweep vs serial.

Not a paper figure: this benchmark records the engineering win of the
``repro.dist`` evaluation service.  An 8-configuration core sweep — the
embarrassingly parallel unit of every cloning/stress campaign — runs
once on the serial backend and once against a 2-worker localhost
cluster (coordinator in-process, workers spawned, jobs over the TCP
protocol); both must produce identical metrics.  A third pass kills one
worker mid-run and must still match.  The shared on-disk artifact store
is exercised end to end: the distributed run persists every trace
artifact, and a follow-up cold-cache run must reuse at least 7 of 8
from disk.  Timings and the artifact-store hit rate land in
``results/BENCH_dist.json`` (uploaded as a CI artifact).
"""

import os
import time

import pytest

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.core.platform import PerformancePlatform
from repro.dist.backend import DistributedBackend
from repro.exec.backend import SerialBackend
from repro.exec.jobs import evaluate_configs
from repro.sim.artifact import attach_artifact_store, detach_artifact_store
from repro.sim.config import core_by_name
from repro.sim.simulator import Simulator

from harness import BUDGETS, print_header, save_artifact

WORKERS = 2
SPEEDUP_TARGET = 1.2
#: Instruction budget: independent of quick/full mode so the recorded
#: speedup is comparable across runs (timing noise shrinks with size).
INSTRUCTIONS = max(BUDGETS.stress_instructions, 20_000)

#: Eight distinct knob configurations — eight distinct generated
#: programs, so the sweep stores eight distinct trace artifacts.
SWEEP_CONFIGS = [
    {"ADD": n % 5 + 1, "MUL": n % 2, "LD": n % 3 + 1, "SD": n % 2,
     "BEQ": 1, "REG_DIST": 2 + n, "MEM_SIZE": 64 << (n % 3)}
    for n in range(8)
]


def _chaos_eval(item):
    """Benchmark chaos job: die once on the poisoned config, then work."""
    sentinel, config, poisoned = item
    if poisoned and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        os._exit(1)
    program = generate_test_case(config,
                                 GenerationOptions(loop_size=BUDGETS.stress_loop))
    return Simulator(core_by_name("large")).run(
        program, instructions=INSTRUCTIONS
    ).metrics()


#: Small budget for the hung-worker pass: its jobs must finish far
#: inside the short lease timeout the pass configures, so only the
#: deliberately hung job ever expires.
HUNG_INSTRUCTIONS = 2_000
HUNG_LEASE_TIMEOUT_S = 3.0


def _hung_eval(item):
    """Hang forever on the poisoned config — but only the first time.

    The worker process stays alive and keeps heartbeating (its
    heartbeat thread is unaffected by the sleeping job), so neither EOF
    detection nor heartbeat eviction fires: only the lease deadline can
    recover the job.
    """
    sentinel, config, poisoned = item
    if poisoned and not os.path.exists(sentinel):
        open(sentinel, "w").close()
        time.sleep(600)  # far past the lease timeout; killed at close()
    program = generate_test_case(config, GenerationOptions(loop_size=80))
    return Simulator(core_by_name("small")).run(
        program, instructions=HUNG_INSTRUCTIONS
    ).metrics()


class TestDistributedSpeedup:
    def test_dist_sweep_matches_serial_and_reuses_artifacts(self, tmp_path):
        print_header(
            "Distributed evaluation service: 8-config sweep, serial vs "
            f"{WORKERS}-worker localhost cluster",
            "engineering target: bit-identical results, artifact reuse >= 7/8",
        )
        platform = PerformancePlatform(core_by_name("large"),
                                       instructions=INSTRUCTIONS)
        options = GenerationOptions(loop_size=BUDGETS.stress_loop)
        cache_dir = str(tmp_path / "cluster-cache")

        start = time.perf_counter()
        serial_metrics = evaluate_configs(
            SerialBackend(), platform, options, SWEEP_CONFIGS
        )
        serial_s = time.perf_counter() - start

        detach_artifact_store()  # the dist run must start store-cold
        with DistributedBackend(spawn_workers=WORKERS,
                                cache_dir=cache_dir) as backend:
            backend.map(len, [[], []])  # warm the workers up front
            start = time.perf_counter()
            dist_metrics = evaluate_configs(
                backend, platform, options, SWEEP_CONFIGS
            )
            dist_s = time.perf_counter() - start

        speedup = serial_s / max(dist_s, 1e-9)
        cores = os.cpu_count() or 1

        # Second run, cold in-process caches: artifacts must come from
        # the store the distributed workers populated.
        try:
            store = attach_artifact_store(
                os.path.join(cache_dir, "artifacts")
            )
            hits_before, misses_before = store.hits, store.misses
            cold_platform = PerformancePlatform(core_by_name("large"),
                                                instructions=INSTRUCTIONS)
            rerun_metrics = evaluate_configs(
                SerialBackend(cache_dir=cache_dir), cold_platform, options,
                SWEEP_CONFIGS,
            )
            hits = store.hits - hits_before
            misses = store.misses - misses_before
        finally:
            detach_artifact_store()
        reuse_rate = hits / max(hits + misses, 1)

        # Chaos pass: one worker dies mid-run; results must not change.
        sentinel = str(tmp_path / "bench-died-once")
        items = [(sentinel, config, index == 3)
                 for index, config in enumerate(SWEEP_CONFIGS)]
        with DistributedBackend(spawn_workers=WORKERS) as backend:
            chaos_metrics = backend.map(_chaos_eval, items)
            reschedules = backend.coordinator.reschedules
        serial_chaos = [
            _chaos_eval((sentinel, config, False)) for config in SWEEP_CONFIGS
        ]

        # Hung-worker pass: one worker goes to sleep mid-job without
        # dropping its connection or its heartbeats; the lease deadline
        # must reschedule the job and the results must not change.
        hung_sentinel = str(tmp_path / "bench-hung-once")
        hung_items = [(hung_sentinel, config, index == 2)
                      for index, config in enumerate(SWEEP_CONFIGS)]
        start = time.perf_counter()
        with DistributedBackend(spawn_workers=WORKERS,
                                lease_timeout=HUNG_LEASE_TIMEOUT_S) as backend:
            hung_metrics = backend.map(_hung_eval, hung_items)
            lease_expiries = backend.coordinator.lease_expiries
        hung_s = time.perf_counter() - start
        serial_hung = [
            _hung_eval((hung_sentinel, config, False))
            for config in SWEEP_CONFIGS
        ]

        print(f"sweep        : {len(SWEEP_CONFIGS)} configurations "
              f"x {INSTRUCTIONS} instructions")
        print(f"serial       : {serial_s:6.2f} s")
        print(f"dist[{WORKERS}]      : {dist_s:6.2f} s  (host cores: {cores})")
        print(f"speedup      : {speedup:5.2f}x")
        print(f"artifact hits: {hits}/{hits + misses} "
              f"(reuse rate {reuse_rate:.2f})")
        print(f"worker kill  : {reschedules} reschedule(s), results identical")
        print(f"worker hang  : {lease_expiries} lease expiry(ies) in "
              f"{hung_s:.2f} s, results identical")
        save_artifact("BENCH_dist", {
            "configs": len(SWEEP_CONFIGS),
            "instructions": INSTRUCTIONS,
            "workers": WORKERS,
            "host_cores": cores,
            "serial_s": serial_s,
            "dist_s": dist_s,
            "speedup": speedup,
            "artifact_store_hits": hits,
            "artifact_store_misses": misses,
            "artifact_reuse_rate": reuse_rate,
            "chaos_reschedules": reschedules,
            "chaos_identical": chaos_metrics == serial_chaos,
            "hung_lease_timeout_s": HUNG_LEASE_TIMEOUT_S,
            "hung_lease_expiries": lease_expiries,
            "hung_recovery_s": hung_s,
            "hung_identical": hung_metrics == serial_hung,
        })

        assert dist_metrics == serial_metrics    # bit-identical results
        assert rerun_metrics == serial_metrics   # store cannot change them
        assert chaos_metrics == serial_chaos     # worker death is invisible
        assert reschedules >= 1
        assert hung_metrics == serial_hung       # a hung worker is invisible
        assert lease_expiries >= 1
        assert hits >= 7, f"expected >= 7/8 artifact reuses, got {hits}"
        if cores >= 2 + 1:  # two workers plus the coordinating process
            assert speedup > SPEEDUP_TARGET, (
                f"expected >{SPEEDUP_TARGET}x on {cores} cores, "
                f"got {speedup:.2f}x"
            )
        else:
            pytest.skip(
                f"host has {cores} cores; speedup assertion needs >= 3 "
                f"(measured {speedup:.2f}x, recorded)"
            )
