"""Fig 2 — workload cloning of 8 SPEC benchmarks on the Large core (GD).

The paper reports per-metric clone/target ratios all close to 1.0
(average error under 1%, worst case ~5% on libquantum), reached in 5-52
tuning epochs.  This bench regenerates the radar rows for every benchmark
and checks the shape: high mean accuracy within the epoch budget.
"""

import pytest

from repro.workloads import benchmark_names

from benchmarks.harness import (
    BUDGETS,
    FULL,
    clone_suite,
    mean_error,
    print_header,
    print_radar_row,
    radar_legend,
)

PAPER_EPOCHS = {
    "astar": 10, "bzip2": 5, "gcc": 19, "hmmer": 52, "libquantum": 45,
    "mcf": 21, "sjeng": 15, "xalancbmk": 26,
}

#: Shape thresholds: the quick budget trades some accuracy for runtime.
MEAN_ACCURACY_FLOOR = 0.93 if FULL else 0.88
SUITE_MEAN_ERROR_CEILING = 0.06 if FULL else 0.11


@pytest.fixture(scope="module")
def cloning_results():
    return clone_suite(benchmark_names(), core="large", tuner="gd")


def test_fig2_radar_rows(cloning_results):
    print_header(
        "Fig 2: cloning on the Large core with gradient descent",
        "all radar ratios ~1.0; avg error <1%; worst ~5% (libquantum); "
        f"epochs 5-52 (paper per-benchmark: {PAPER_EPOCHS})",
    )
    radar_legend()
    errors = []
    for name, result in cloning_results.items():
        print_radar_row(name, result)
        errors.append(mean_error(result))
    suite_error = sum(errors) / len(errors)
    print(f"\nsuite mean radar error: {suite_error:.3f} "
          f"(paper: <0.01 at 10M-instruction fidelity)")
    from benchmarks.harness import radar_payload, save_artifact

    save_artifact("fig2_cloning_large", {
        "suite_mean_error": suite_error,
        "benchmarks": radar_payload(cloning_results),
    })
    assert suite_error < SUITE_MEAN_ERROR_CEILING


def test_fig2_every_benchmark_clones_well(cloning_results):
    for name, result in cloning_results.items():
        assert result.mean_accuracy > MEAN_ACCURACY_FLOOR, (
            f"{name}: mean accuracy {result.mean_accuracy:.3f}"
        )


def test_fig2_epochs_within_paper_scale(cloning_results):
    for name, result in cloning_results.items():
        assert result.tuning.epochs <= BUDGETS.cloning_epochs


def test_fig2_distribution_metrics_nearly_exact(cloning_results):
    """Instruction-distribution axes sit closest to 1.0 (as in Fig 2)."""
    for name, result in cloning_results.items():
        for metric in ("load", "store", "branch"):
            ratio = result.accuracy[metric]
            assert abs(ratio - 1.0) < 0.30, f"{name}/{metric}: {ratio:.2f}"


def test_fig2_single_clone_epoch_cost(benchmark, cloning_results):
    """Time one GD cloning epoch-equivalent (1 base + 2 x knobs evals)."""
    sample = next(iter(cloning_results.values()))

    def one_epoch_equivalent():
        # 33 cached evaluations approximate an epoch's platform work.
        from repro.codegen import generate_test_case
        from repro.sim import LARGE_CORE, Simulator

        program = generate_test_case(sample.knobs)
        return Simulator(LARGE_CORE).run(program, instructions=8_000)

    stats = benchmark(one_epoch_equivalent)
    assert stats.ipc > 0
