"""Observability overhead gate: instrumentation must stay in the noise.

The metrics registry sits on the hot path of every pipeline stage —
``obs.inc`` inside the event engines, ``obs.span`` around each
``run_many`` — so this benchmark prices it.  The 16-core config-batched
sweep of ``test_config_batch`` (the fastest, most call-dense engine
configuration, where fixed per-call costs are hardest to hide) runs
twice: once with the registry disabled (``REPRO_OBS=off`` semantics)
and once enabled under a collection scope.  The enabled arm must stay
within ``OVERHEAD_LIMIT`` of the disabled one, and its collected
snapshot is rendered through :func:`repro.obs.build_run_report` into
``results/run_report.json`` (uploaded as a CI artifact) so every CI
run leaves a machine-readable stage/counter record behind.

Times land in ``results/BENCH_obs.json``.
"""

import json

from repro import obs
from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.obs import REGISTRY
from repro.sim import Simulator

from harness import RESULTS_DIR, print_header, save_artifact
from test_config_batch import (
    INSTRUCTIONS,
    SWEEP_KNOBS,
    SWEEP_LOOP_SIZE,
    sweep_cores,
    timed_sweep,
)

#: Enabled-vs-disabled wall-time ratio the registry must stay under.
OVERHEAD_LIMIT = 0.03
#: Paired measurement rounds.  Each round times the disabled arm then
#: the enabled arm back to back (each a best-of inside ``timed_sweep``)
#: and the gate takes the *cleanest* round's ratio: scheduler noise on
#: a loaded CI host inflates individual samples by far more than the
#: few-microsecond instrumentation cost, but it cannot inflate every
#: paired round, so min-of-ratios converges on the true overhead.
ROUNDS = 5


class TestObservabilityOverhead:
    def test_overhead_under_limit_and_report_written(self):
        print_header(
            "Observability overhead: 16-core batched sweep, registry "
            "on vs off",
            f"engineering target: <{OVERHEAD_LIMIT:.0%} overhead with "
            f"every stage span and counter live",
        )
        program = generate_test_case(
            SWEEP_KNOBS, GenerationOptions(loop_size=SWEEP_LOOP_SIZE)
        )
        cores = sweep_cores()
        # Warm the interpreter/allocator so neither arm pays first-run
        # costs; fresh caches inside timed_sweep keep the pipeline cold.
        Simulator(cores[0]).run(program, instructions=INSTRUCTIONS)

        enabled_before = obs.is_enabled()
        off_s = on_s = float("inf")
        overhead = float("inf")
        stats_off = stats_on = None
        scope = None
        try:
            for _ in range(ROUNDS):
                REGISTRY.set_enabled(False)
                round_off, stats_off = timed_sweep(
                    cores, program, "vectorized", config_batch=True
                )
                off_s = min(off_s, round_off)

                REGISTRY.set_enabled(True)
                with obs.collect() as scope:
                    round_on, stats_on = timed_sweep(
                        cores, program, "vectorized", config_batch=True
                    )
                on_s = min(on_s, round_on)
                overhead = min(
                    overhead, round_on / max(round_off, 1e-9) - 1.0
                )
        finally:
            REGISTRY.set_enabled(enabled_before)
        snapshot = scope.snapshot()
        report = obs.build_run_report(
            snapshot, wall_s=on_s,
            extra={"benchmark": "obs_overhead", "cores": len(cores),
                   "instructions": INSTRUCTIONS},
        )
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / "run_report.json").write_text(
            json.dumps(report, indent=2, sort_keys=True)
        )

        print(f"cores        : {len(cores)} configurations")
        print(f"instructions : {INSTRUCTIONS}")
        print(f"registry off : {off_s:6.3f} s  (best of {ROUNDS} rounds)")
        print(f"registry on  : {on_s:6.3f} s")
        print(f"overhead     : {overhead * 100:+5.2f}%  "
              f"(best paired round; limit {OVERHEAD_LIMIT:.0%})")
        print(f"stages seen  : {sorted(snapshot.timers)}")
        save_artifact("BENCH_obs", {
            "cores": len(cores),
            "instructions": INSTRUCTIONS,
            "sweep_loop_size": SWEEP_LOOP_SIZE,
            "disabled_s": off_s,
            "enabled_s": on_s,
            "overhead": overhead,
            "overhead_limit": OVERHEAD_LIMIT,
            "stages": sorted(snapshot.timers),
            "bit_identical": stats_on == stats_off,
        })

        # Instrumentation must never change results, only record them.
        assert stats_on == stats_off
        # The spans the report exists for must actually have fired.
        assert "sim.run_many" in snapshot.timers
        assert "events.memory.batch" in snapshot.timers
        assert snapshot.counters.get("engine_path.memory.batch")
        assert overhead < OVERHEAD_LIMIT, (
            f"observability overhead {overhead:.2%} exceeds "
            f"{OVERHEAD_LIMIT:.0%} (on {on_s:.3f}s vs off {off_s:.3f}s)"
        )
