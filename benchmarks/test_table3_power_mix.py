"""Table III — the GD power virus instruction distribution.

The paper's power virus is memory- and FP-dominated: >50% of instructions
are loads/stores, >20% floating point, only ~6% plain integer — and the
register dependency distance lands at its maximum (ILP pushed as far as
the knobs allow).  This bench regenerates the winning mix and asserts
those structural properties.
"""

import pytest

from benchmarks.harness import print_header, run_stress

PAPER_TABLE_III = {
    "integer": 0.057, "float": 0.228, "branch": 0.143,
    "load": 0.228, "store": 0.328,
}


@pytest.fixture(scope="module")
def power_virus():
    return run_stress("dynamic_power", maximize=True, core="large",
                      tuner="gd")


def test_table3_distribution(power_virus):
    mix = power_virus.program.group_fractions()
    print_header(
        "Table III: power-virus instruction distribution",
        "Int 5.7% / Float 22.8% / Branch 14.3% / Load 22.8% / "
        "Store 32.8%; memory >50%, dependency distance at maximum",
    )
    print(f"{'class':<10} {'paper':>8} {'measured':>9}")
    for group, paper_value in PAPER_TABLE_III.items():
        print(f"{group:<10} {paper_value:>7.1%} "
              f"{mix.get(group, 0.0):>8.1%}")

    memory_share = mix.get("load", 0.0) + mix.get("store", 0.0)
    print(f"\nmemory share: {memory_share:.1%} (paper: 55.6%)")
    from benchmarks.harness import save_artifact

    save_artifact("table3_power_mix", {
        "paper": PAPER_TABLE_III,
        "measured": {g: mix.get(g, 0.0) for g in PAPER_TABLE_III},
        "memory_share": memory_share,
    })
    assert memory_share > 0.35, "power virus must be memory-dominated"

    integer_share = mix.get("integer", 0.0)
    assert integer_share < 0.35, "plain integer ops are the smallest class"
    assert integer_share < memory_share


def test_table3_float_ops_prominent(power_virus):
    mix = power_virus.program.group_fractions()
    assert mix.get("float", 0.0) > 0.10, (
        "FP ops perform the most microarchitectural work per instruction "
        "and must feature prominently"
    )


def test_table3_dependency_distance_maximal(power_virus):
    """'The register dependency distance chosen by this stress test was
    at its maximum limit' — our scenario pins it there; assert the pin
    holds and is the lattice maximum."""
    assert power_virus.knobs["REG_DIST"] == 10
