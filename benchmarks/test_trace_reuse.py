"""Trace-once/simulate-many harness for the staged simulator pipeline.

Not a paper figure: this benchmark records the engineering win of the
``TraceArtifact`` pipeline.  One generated program is evaluated under
eight core configurations twice — as eight independent ``Simulator.run``
calls (each re-expanding the trace and re-simulating every event
stream), and as one ``Simulator.run_many`` batch sharing a single trace
artifact.  The batch must be bit-identical and at least 2x faster; the
measured times land in ``results/BENCH_sim.json`` so the speedup is
tracked across runs (and uploaded as a CI artifact).
"""

import time
from dataclasses import replace

from repro.codegen.wrapper import GenerationOptions, generate_test_case
from repro.sim import Simulator, TraceArtifactCache
from repro.sim.config import CacheGeometry, core_by_name

from harness import BUDGETS, print_header, save_artifact

SPEEDUP_TARGET = 2.0
#: Instruction budget: independent of quick/full mode so the recorded
#: speedup is comparable across runs (timing noise shrinks with size).
INSTRUCTIONS = max(BUDGETS.stress_instructions, 20_000)

KNOBS = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=2, BNE=1,
             LD=3, LW=1, SD=1, SW=1,
             REG_DIST=4, MEM_SIZE=512, MEM_STRIDE=64,
             MEM_TEMP1=2, MEM_TEMP2=1, B_PATTERN=0.3)


def sweep_cores():
    """An 8-config sensitivity-style sweep around the Large core: six
    back-end variants (which share every event simulation) plus two
    distinct cache hierarchies (which do not)."""
    base = core_by_name("large")
    return [
        base,
        replace(base, rob=80, lsq=32, rse=64),
        replace(base, front_end_width=4),
        replace(base, alu_units=3, simd_units=2, fp_units=2),
        replace(base, mispredict_penalty=20),
        replace(base, memory_latency=270),
        replace(base, l1d=CacheGeometry(16 * 1024, 4, latency=4)),
        replace(base, l2=CacheGeometry(512 * 1024, 8, latency=14)),
    ]


class TestTraceReuse:
    def test_run_many_beats_independent_runs(self):
        print_header(
            "Staged pipeline: 8-config sweep, independent runs vs run_many",
            f"engineering target: >={SPEEDUP_TARGET}x from trace reuse",
        )
        program = generate_test_case(
            KNOBS, GenerationOptions(loop_size=BUDGETS.stress_loop)
        )
        cores = sweep_cores()

        # Warm the interpreter/allocator so neither path pays first-run
        # costs; fresh caches below keep the measurement itself cold.
        Simulator(cores[0]).run(program, instructions=INSTRUCTIONS)

        start = time.perf_counter()
        independent = [
            Simulator(core).run(program, instructions=INSTRUCTIONS)
            for core in cores
        ]
        independent_s = time.perf_counter() - start

        batch_cache = TraceArtifactCache(maxsize=2)
        start = time.perf_counter()
        batched = Simulator.run_many(
            cores,
            program,
            instructions=INSTRUCTIONS,
            artifact_cache=batch_cache,
        )
        batched_s = time.perf_counter() - start

        speedup = independent_s / max(batched_s, 1e-9)
        print(f"cores       : {len(cores)} configurations")
        print(f"independent : {independent_s:6.3f} s  (8x full pipeline)")
        print(f"run_many    : {batched_s:6.3f} s  (one shared artifact)")
        print(f"speedup     : {speedup:5.2f}x")
        save_artifact("BENCH_sim", {
            "cores": len(cores),
            "instructions": INSTRUCTIONS,
            "loop_size": BUDGETS.stress_loop,
            "independent_s": independent_s,
            "run_many_s": batched_s,
            "speedup": speedup,
            "bit_identical": batched == independent,
        })

        assert batched == independent  # bit-identical SimStats
        assert speedup >= SPEEDUP_TARGET, (
            f"expected >={SPEEDUP_TARGET}x from trace reuse, "
            f"got {speedup:.2f}x"
        )
