"""Ablation benches for the design choices DESIGN.md calls out.

The paper attributes MicroGrad's efficiency to three GD mechanism
features (Section III-D): adaptive step sizes, stochastic knob skipping,
and the steepest-knob normalized update.  These ablations turn each off
and measure the effect on the stress-test task, plus an evaluation-cache
ablation quantifying the memoization the lattice makes possible.
"""

import pytest

from repro.core.framework import MicroGrad
from repro.tuning.evaluator import Evaluator
from repro.tuning.gradient import GDParams, GradientDescentTuner
from repro.tuning.loss import StressLoss

from benchmarks.harness import BUDGETS, print_header, stress_config


def _gd_run(params: GDParams, seed=0):
    mg = MicroGrad(stress_config("ipc", False, "large", "gd"))
    evaluator = Evaluator(mg.knob_space, mg._evaluate_config)
    tuner = GradientDescentTuner(
        evaluator, StressLoss("ipc"), params, seed=seed
    )
    return tuner.run()


@pytest.fixture(scope="module")
def baseline():
    return _gd_run(GDParams(max_epochs=BUDGETS.stress_epochs), seed=1)


def test_ablation_fixed_step_size(baseline):
    """Disable the adaptive schedule (constant mid-size steps)."""
    fixed = _gd_run(
        GDParams(max_epochs=BUDGETS.stress_epochs, step_initial=1.0,
                 step_final=1.0, step_decay=1.0),
        seed=1,
    )
    print_header(
        "Ablation: adaptive step sizes",
        "larger-to-smaller steps give faster early progress and surer "
        "late convergence (Section III-D step 8)",
    )
    print(f"adaptive best IPC: {baseline.best_metrics['ipc']:.3f} "
          f"in {baseline.epochs} epochs")
    print(f"fixed    best IPC: {fixed.best_metrics['ipc']:.3f} "
          f"in {fixed.epochs} epochs")
    # Both should find a virus; adaptive must not be substantially worse.
    assert baseline.best_loss <= fixed.best_loss * 1.15 + 0.05


def test_ablation_no_knob_skipping(baseline):
    """Disable stochastic knob skipping (robustness feature)."""
    no_skip = _gd_run(
        GDParams(max_epochs=BUDGETS.stress_epochs, skip_probability=0.0),
        seed=1,
    )
    print_header(
        "Ablation: stochastic knob skipping",
        "random knob skips with decaying probability help escape local "
        "minima (Section III-D step 9)",
    )
    print(f"with skipping : best IPC {baseline.best_metrics['ipc']:.3f}, "
          f"{baseline.requested_evaluations} evals")
    print(f"no skipping   : best IPC {no_skip.best_metrics['ipc']:.3f}, "
          f"{no_skip.requested_evaluations} evals")
    # Skipping saves evaluations per epoch by construction.
    assert (
        baseline.requested_evaluations / baseline.epochs
        <= no_skip.requested_evaluations / no_skip.epochs
    )


def test_ablation_evaluation_cache():
    """Quantify memoization: lattice tuners revisit configurations."""
    mg = MicroGrad(stress_config("ipc", False, "large", "gd"))
    cached = Evaluator(mg.knob_space, mg._evaluate_config, cache=True)
    result = GradientDescentTuner(
        cached, StressLoss("ipc"),
        GDParams(max_epochs=BUDGETS.stress_epochs), seed=2,
    ).run()
    hit_fraction = 1 - result.unique_evaluations / result.requested_evaluations
    print_header(
        "Ablation: evaluation memoization",
        "discrete knob lattices make repeated configurations common; the "
        "cache converts them into free lookups",
    )
    print(f"requested {result.requested_evaluations}, "
          f"unique {result.unique_evaluations}, "
          f"cache hits {hit_fraction:.0%}")
    assert result.unique_evaluations <= result.requested_evaluations


def test_ablation_step_normalization_benchmark(benchmark):
    """Time a full GD epoch on the real platform (the paper's epoch
    cost unit) — used to compare ablations in wall-clock terms."""
    mg = MicroGrad(stress_config("ipc", False, "large", "gd"))
    evaluator = Evaluator(mg.knob_space, mg._evaluate_config)
    loss = StressLoss("ipc")

    def one_epoch():
        tuner = GradientDescentTuner(
            evaluator, loss, GDParams(max_epochs=1), seed=3
        )
        return tuner.run()

    result = benchmark(one_epoch)
    assert result.epochs == 1
