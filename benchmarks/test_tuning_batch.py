"""Generation-batched tuning benchmark: GA-shaped epochs, grouped path.

Not a paper figure: this benchmark records the engineering win of PR 7's
generation-batched evaluation path.  A genetic-algorithm tuning run
presents 16-individual generations whose populations are highly
redundant — unmutated crossover children are exact clones and mutated
ones frequently differ only by a proportional scaling of the instruction
weights, which :func:`repro.codegen.wrapper.generation_fingerprint`
proves generate the identical program.  Four such generations on a
streaming workload (2 MB footprint, aperiodic within the simulated
window) are evaluated two ways through ``evaluate_configs``:

* **per-config** — the legacy path (``supports_config_batch`` off): one
  generation + one ``Simulator.run`` per individual, clone or not;
* **batched** — the grouped planner: one generation + one
  ``run_many(config_batch=True)`` shared pass per equivalence group,
  results fanned back out per individual.

The batched stream must be bit-identical metric-for-metric, must never
touch the per-config job (``evaluate.single``), must serve every group
through the config-batched shared pass (``evaluate.group`` +
``icache.batch``/``memory.batch``/``branch.batch``), and must clear the
wall-clock gate below.  Times land in ``results/BENCH_tuning.json``
(uploaded as a CI artifact alongside ``BENCH_batch.json``).
"""

import time

from repro.codegen.wrapper import (
    GenerationOptions,
    KNOB_INSTRUCTIONS,
    generate_test_case,
)
from repro.core.platform import PerformancePlatform
from repro.exec.backend import SerialBackend
from repro.exec.jobs import evaluate_configs
from repro.sim.config import core_by_name
from repro.sim.events import engine_path_counts, reset_engine_path_counts

from harness import print_header, save_artifact

#: Batched generations vs the per-config path, end to end.
TUNING_SPEEDUP_TARGET = 2.0
#: Individuals per GA generation (paper Table I population is 50; 16
#: keeps the benchmark fast while preserving the redundancy structure).
POPULATION = 16
#: GA generations presented to the evaluation layer.
GENERATIONS = 4
#: Instruction budget per evaluation: small enough that the per-config
#: marginal costs (generation, fingerprinting, memo-hit replay) are not
#: drowned by the per-lineage artifact build both arms share.
INSTRUCTIONS = 100_000
#: Loop size: the larger body keeps per-individual generation cost
#: realistic relative to simulation.
LOOP_SIZE = 680
#: Timing repetitions per arm; the best run is recorded so scheduler
#: noise on loaded CI hosts cannot fake a regression.
REPEATS = 2

#: Streaming parent workload: the 2 MB footprint walks far past the
#: Small core's caches and the MEM_TEMP2 reuse cadence keeps the
#: expanded trace aperiodic within the simulated window.
BASE_KNOBS = dict(ADD=4, MUL=1, FADDD=1, FMULD=1, BEQ=2, BNE=1,
                  LD=3, LW=1, SD=1, SW=1,
                  REG_DIST=4, MEM_SIZE=2048, MEM_STRIDE=64,
                  MEM_TEMP1=2, MEM_TEMP2=7, B_PATTERN=0.3)

#: Paths that must never appear in the batched arm: every chunk goes
#: through the grouped job, so the per-config job stays cold.
FORBIDDEN_PATHS = ("evaluate.single",)
#: Paths the batched arm must exercise: the grouped job itself plus the
#: config-batched shared pass for all three event families.
REQUIRED_PATHS = ("evaluate.batch", "evaluate.group",
                  "icache.batch", "memory.batch", "branch.batch")


def scale_profile(knobs: dict, factor: int) -> dict:
    """Proportionally scale the instruction weights (same program)."""
    return {
        k: v * factor if k in KNOB_INSTRUCTIONS else v
        for k, v in knobs.items()
    }


def ga_generations() -> list[dict]:
    """GA-shaped evaluation stream: GENERATIONS x POPULATION configs.

    Each generation holds two surviving lineages; each lineage
    contributes its parent, proportionally scaled mutants and exact
    clone children — the redundancy profile of a converging GA
    population (crossover of identical parents plus a 3 % per-gene
    mutation rate leaves roughly half of each generation unmutated).
    """
    configs = []
    for generation in range(GENERATIONS):
        for lineage in range(POPULATION // 8):
            parent = dict(BASE_KNOBS,
                          MEM_TEMP2=3 + 2 * generation,
                          REG_DIST=2 + lineage)
            for factor in (1, 2, 3, 4):   # mutated: scaled twins
                configs.append(scale_profile(parent, factor))
            for factor in (1, 2, 1, 2):   # unmutated clone children
                configs.append(scale_profile(parent, factor))
    return configs


def timed_arm(configs, options, batched):
    """Best-of-N wall time for one evaluation arm.

    Every repetition uses a fresh platform (fresh simulator and artifact
    caches), so each arm pays the full generation + artifact + event
    pipeline and nothing leaks between arms.
    """
    best_s = float("inf")
    metrics = None
    for _ in range(REPEATS):
        platform = PerformancePlatform(
            core_by_name("small"), instructions=INSTRUCTIONS
        )
        if not batched:
            platform.supports_config_batch = False
        start = time.perf_counter()
        metrics = evaluate_configs(
            SerialBackend(), platform, options, configs
        )
        best_s = min(best_s, time.perf_counter() - start)
    return best_s, metrics


class TestTuningBatch:
    def test_batched_generations_beat_per_config(self):
        print_header(
            "Generation-batched tuning: GA generations through the "
            "grouped evaluation path",
            f"engineering target: >={TUNING_SPEEDUP_TARGET}x vs "
            f"per-config, bit-identical metrics",
        )
        options = GenerationOptions(loop_size=LOOP_SIZE)
        configs = ga_generations()
        distinct = len({
            tuple(sorted(c.items())) for c in configs
        })

        # Warm the interpreter/allocator so neither arm pays first-run
        # costs; fresh platforms inside timed_arm keep the pipeline cold.
        PerformancePlatform(
            core_by_name("small"), instructions=20_000
        ).evaluate(generate_test_case(BASE_KNOBS, options))

        per_config_s, per_config = timed_arm(configs, options, False)
        reset_engine_path_counts()
        batched_s, batched = timed_arm(configs, options, True)
        paths = engine_path_counts()

        speedup = per_config_s / max(batched_s, 1e-9)
        groups_per_run = paths.get("evaluate.group", 0) // REPEATS

        print(f"configs      : {len(configs)} "
              f"({GENERATIONS} generations x {POPULATION} individuals, "
              f"{distinct} distinct, {groups_per_run} groups)")
        print(f"instructions : {INSTRUCTIONS}  loop {LOOP_SIZE}")
        print(f"per-config   : {per_config_s:6.3f} s  (legacy path)")
        print(f"batched      : {batched_s:6.3f} s  (grouped shared pass)")
        print(f"speedup      : {speedup:5.2f}x")
        print(f"engine paths : {sorted(paths)}")
        save_artifact("BENCH_tuning", {
            "configs": len(configs),
            "distinct_configs": distinct,
            "generations": GENERATIONS,
            "population": POPULATION,
            "groups_per_run": groups_per_run,
            "instructions": INSTRUCTIONS,
            "loop_size": LOOP_SIZE,
            "per_config_s": per_config_s,
            "batched_s": batched_s,
            "speedup": speedup,
            "engine_paths": paths,
            "bit_identical": batched == per_config,
        })

        assert batched == per_config  # metric-for-metric identical
        for forbidden in FORBIDDEN_PATHS:
            assert not paths.get(forbidden), (
                f"batched arm fell back to {forbidden}: {paths}"
            )
        for required in REQUIRED_PATHS:
            assert paths.get(required), (
                f"batched arm never exercised {required}: {paths}"
            )
        # Every non-cached config was served by the grouped path: one
        # group per lineage per generation (all four scaled twins of a
        # parent share a fingerprint), none left to the per-config job.
        assert groups_per_run == GENERATIONS * POPULATION // 8
        assert speedup >= TUNING_SPEEDUP_TARGET, (
            f"expected >={TUNING_SPEEDUP_TARGET}x from generation "
            f"batching, got {speedup:.2f}x"
        )
