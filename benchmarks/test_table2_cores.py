"""Table II — the Small and Large core configurations.

Asserts the simulated cores match the paper's table and benchmarks one
full simulator evaluation on each core (the unit of work every tuning
epoch multiplies).
"""

import pytest

from repro.codegen import generate_test_case
from repro.sim import LARGE_CORE, SMALL_CORE, Simulator

from benchmarks.harness import print_header

PAPER_TABLE_II = {
    "small": dict(width=3, rob=40, lsq=16, rse=32, alu=3, simd=2, fp=2,
                  l1_kb=16, l2_kb=256, prefetch=False),
    "large": dict(width=8, rob=160, lsq=64, rse=128, alu=6, simd=4, fp=4,
                  l1_kb=32, l2_kb=1024, prefetch=True),
}

_KNOBS = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1, LD=3, LW=1,
              SD=1, SW=1, REG_DIST=6, MEM_SIZE=32, MEM_STRIDE=64,
              MEM_TEMP1=4, MEM_TEMP2=2, B_PATTERN=0.2)


def test_table2_core_configurations():
    print_header(
        "Table II: core configurations",
        "2GHz; Small 3-wide 40/16/32 3/2/2 16k/256k; "
        "Large 8-wide 160/64/128 6/4/4 32k/1M+prefetch",
    )
    for core in (SMALL_CORE, LARGE_CORE):
        paper = PAPER_TABLE_II[core.name]
        measured = dict(
            width=core.front_end_width, rob=core.rob, lsq=core.lsq,
            rse=core.rse, alu=core.alu_units, simd=core.simd_units,
            fp=core.fp_units, l1_kb=core.l1i.size_bytes // 1024,
            l2_kb=core.l2.size_bytes // 1024, prefetch=core.l2_prefetcher,
        )
        print(f"{core.name:<6} paper={paper}")
        print(f"{'':<6} built={measured}")
        assert measured == paper
        assert core.frequency_ghz == 2.0
        assert core.memory_gb == 1


@pytest.mark.parametrize("core", [SMALL_CORE, LARGE_CORE],
                         ids=["small", "large"])
def test_simulation_cost_per_evaluation(benchmark, core):
    """Time one knob-config evaluation (generation + simulation)."""
    program = generate_test_case(_KNOBS)

    stats = benchmark(
        lambda: Simulator(core).run(program, instructions=8_000)
    )
    assert stats.ipc > 0


def test_design_space_corners_behave():
    """Sanity: the Large core outruns the Small core on compute."""
    compute = dict(_KNOBS, ADD=10, MUL=0, FADDD=0, FMULD=0, BEQ=0, BNE=0,
                   LD=0, LW=0, SD=0, SW=0, REG_DIST=10, B_PATTERN=0.0)
    program = generate_test_case(compute)
    small_ipc = Simulator(SMALL_CORE).run(program).ipc
    large_ipc = Simulator(LARGE_CORE).run(program).ipc
    print(f"compute-bound IPC: small {small_ipc:.2f}, large {large_ipc:.2f}")
    assert large_ipc > small_ipc
