"""Ablation: abstract workload model vs instruction-level model.

Section II-B1 argues the abstract model's few, well-defined knobs make
tuning dramatically cheaper, while instruction-level models (GeST) need
GA operators over long per-instruction genomes.  This bench runs both on
the same worst-case-IPC task and compares outcome per evaluation spent.
"""

import pytest

from repro.codegen.instlevel import (
    FixedCodeParams,
    GenomeEvaluator,
    InstructionLevelSpace,
)
from repro.core.framework import MicroGrad
from repro.core.platform import PerformancePlatform
from repro.sim import LARGE_CORE
from repro.tuning.genetic import GAParams
from repro.tuning.instlevel_ga import InstructionLevelGeneticTuner
from repro.tuning.loss import StressLoss

from benchmarks.harness import BUDGETS, print_header, stress_config


@pytest.fixture(scope="module")
def abstract_result():
    return MicroGrad(stress_config("ipc", False, "large", "gd")).run()


@pytest.fixture(scope="module")
def instruction_level_result(abstract_result):
    platform = PerformancePlatform(
        LARGE_CORE, instructions=BUDGETS.stress_instructions
    )
    space = InstructionLevelSpace(length=BUDGETS.stress_loop)
    evaluator = GenomeEvaluator(
        platform.evaluate,
        FixedCodeParams(
            dependency_distance=10,
            mem_footprint_bytes=16 * 1024,
            branch_random_ratio=0.1,
        ),
    )
    # Equal evaluation budget to the abstract-model GD run.
    budget = max(1, abstract_result.tuning.requested_evaluations)
    epochs = max(1, budget // GAParams().population_size)
    tuner = InstructionLevelGeneticTuner(
        space, evaluator, StressLoss("ipc"),
        GAParams(max_epochs=epochs), seed=0,
    )
    return tuner.run()


def test_ablation_model_comparison(abstract_result, instruction_level_result):
    print_header(
        "Ablation: abstract workload model (GD) vs instruction-level (GA)",
        "Section II-B1: few well-defined knobs reduce tuning complexity; "
        "instruction-level control needs far more evaluations",
    )
    abstract_ipc = abstract_result.metrics["ipc"]
    inst_ipc = instruction_level_result.best_metrics["ipc"]
    print(
        f"abstract+GD        : worst IPC {abstract_ipc:.3f} in "
        f"{abstract_result.tuning.requested_evaluations} evaluations "
        f"({abstract_result.tuning.epochs} epochs, 5 knobs)"
    )
    print(
        f"instruction-level+GA: worst IPC {inst_ipc:.3f} in "
        f"{instruction_level_result.requested_evaluations} evaluations "
        f"({instruction_level_result.epochs} generations, "
        f"{BUDGETS.stress_loop}-gene genomes)"
    )
    # At an equal evaluation budget the abstract model must not lose:
    # its search space is exponentially smaller for the same behaviours.
    assert abstract_ipc <= inst_ipc * 1.05


def test_ablation_genome_dimensionality(instruction_level_result):
    """The instruction-level genome is orders of magnitude larger than
    the knob vector — the paper's core complexity argument."""
    genome = instruction_level_result.best_config["GENOME"]
    print(f"instruction-level genome length: {len(genome)} genes "
          f"vs 5 abstract class knobs")
    assert len(genome) >= 50


def test_ablation_instruction_level_still_tunes(instruction_level_result):
    """Sanity: the GeST-style path does make progress (it is a real
    baseline, not a strawman)."""
    curve = [r.best_loss for r in instruction_level_result.history]
    assert curve[-1] <= curve[0]
