"""Fig 4 — cloning with the genetic-algorithm baseline at equal epochs.

The paper gives the GA the same epoch budget GD needed per benchmark
(Fig 2's counts) and finds far worse clones: average error ~30%, worst
cases above 50% — while each GA epoch costs 50 evaluations against GD's
2 x knobs.  This bench regenerates the comparison (a benchmark subset in
quick mode) and checks the shape: GA error is a multiple of GD error at
matched epochs.
"""

import pytest

from repro.workloads import benchmark_names

from benchmarks.harness import (
    BUDGETS,
    clone_suite,
    mean_error,
    print_header,
    print_radar_row,
    radar_legend,
)


@pytest.fixture(scope="module")
def paired_results():
    """(gd, ga) results per benchmark, with GA at GD's epoch count."""
    names = benchmark_names()[: BUDGETS.ga_benchmarks]
    gd_results = clone_suite(names, core="large", tuner="gd")
    ga_results = clone_suite(
        names, core="large", tuner="ga",
        epochs_per_benchmark={
            name: max(1, gd_results[name].tuning.epochs) for name in names
        },
    )
    return {name: (gd_results[name], ga_results[name]) for name in names}


def test_fig4_ga_radar_rows(paired_results):
    print_header(
        "Fig 4: cloning with GA at GD's epoch budget (Large core)",
        "GA avg error ~30%, worst >50%; radial axes span 0.5-1.5 "
        "(vs 0.9-1.1 for GD)",
    )
    radar_legend()
    gd_errors, ga_errors = [], []
    for name, (gd, ga) in paired_results.items():
        print_radar_row(f"{name}/gd", gd)
        print_radar_row(f"{name}/ga", ga)
        gd_errors.append(mean_error(gd))
        ga_errors.append(mean_error(ga))
    gd_mean = sum(gd_errors) / len(gd_errors)
    ga_mean = sum(ga_errors) / len(ga_errors)
    print(f"\nmean radar error: GD {gd_mean:.3f} vs GA {ga_mean:.3f} "
          f"(paper: <1% vs ~30%)")
    assert ga_mean > gd_mean, "GA must be worse at equal epochs"


def test_fig4_ga_is_substantially_less_accurate(paired_results):
    worse = 0
    for name, (gd, ga) in paired_results.items():
        if mean_error(ga) > 1.5 * mean_error(gd):
            worse += 1
    # The shape claim: GA trails GD decisively on most of the suite.
    assert worse >= len(paired_results) * 0.5


def test_fig4_equal_epochs_is_favourable_to_ga_in_evaluations(paired_results):
    """At matched epochs the GA consumed ~2.5x the evaluations (the
    paper's resource argument: 50 vs 2 x knobs per epoch)."""
    for name, (gd, ga) in paired_results.items():
        gd_per_epoch = gd.tuning.requested_evaluations / gd.tuning.epochs
        ga_per_epoch = ga.tuning.requested_evaluations / ga.tuning.epochs
        print(f"{name}: evals/epoch GD {gd_per_epoch:.0f} "
              f"GA {ga_per_epoch:.0f}")
        assert ga_per_epoch == 50
        assert ga_per_epoch > 1.4 * gd_per_epoch
