"""Fig 6 — power virus: maximum dynamic power, GD vs GA vs brute force.

The paper's brute-force sweep tops out around 2.1 W on the Large core;
GD reaches ~95% of that in ~25 epochs while the GA needs roughly twice
the epochs for similar power.  This bench regenerates the series and
asserts those shapes.
"""

import pytest

from benchmarks.harness import (
    BUDGETS,
    brute_force_stress,
    print_header,
    run_stress,
)


@pytest.fixture(scope="module")
def series():
    oracle = brute_force_stress("dynamic_power", maximize=True, core="large")
    gd = run_stress("dynamic_power", maximize=True, core="large", tuner="gd")
    ga_matched = run_stress(
        "dynamic_power", maximize=True, core="large", tuner="ga",
        max_epochs=BUDGETS.stress_epochs,
    )
    return oracle, gd, ga_matched


def test_fig6_series(series):
    oracle, gd, ga = series
    peak = oracle.best_metrics["dynamic_power"]
    print_header(
        "Fig 6: power virus (max dynamic power), Large core",
        "brute force ~2.1 W; GD hits ~95% of it in ~25 epochs; GA needs "
        "~2x the epochs for similar power",
    )
    print(f"brute-force peak power : {peak:.3f} W "
          f"({oracle.requested_evaluations} evaluations)")
    print(f"GD best power          : {gd.metrics['dynamic_power']:.3f} W "
          f"in {gd.tuning.epochs} epochs")
    print(f"GA best power          : {ga.metrics['dynamic_power']:.3f} W "
          f"in {ga.tuning.epochs} epochs")
    print("\nGD best-so-far dynamic power per epoch (W):")
    print("  " + " ".join(f"{-r.best_loss:5.2f}" for r in gd.tuning.history))
    from benchmarks.harness import save_artifact

    save_artifact("fig6_power_virus", {
        "brute_force_peak_w": peak,
        "gd": {"power_w": gd.metrics["dynamic_power"],
               "epochs": gd.tuning.epochs,
               "curve": [-v for v in gd.tuning.loss_curve()]},
        "ga": {"power_w": ga.metrics["dynamic_power"],
               "epochs": ga.tuning.epochs,
               "curve": [-v for v in ga.tuning.loss_curve()]},
    })

    # Shape: GD achieves >= 95% of the oracle peak (the paper's 2.01 W
    # against 2.1 W).
    assert gd.metrics["dynamic_power"] >= 0.93 * peak


def test_fig6_absolute_watts_in_paper_range(series):
    oracle, _, _ = series
    peak = oracle.best_metrics["dynamic_power"]
    # The McPAT-like model is calibrated to the paper's scale: the
    # brute-force peak lands in the same watt range as Fig 6's 2.1 W.
    assert 1.2 < peak < 3.2


def test_fig6_gd_converges_faster_than_ga(series):
    """Epochs for GA to first reach GD's final power: about 2x GD's
    epochs-to-best (the paper's 'GA requires roughly 2x the epochs')."""
    _, gd, ga = series
    gd_power = gd.metrics["dynamic_power"]
    gd_epochs_to_best = next(
        r.epoch for r in gd.tuning.history
        if -r.best_loss >= gd_power * 0.999
    )
    ga_epochs_to_match = next(
        (r.epoch for r in ga.tuning.history if -r.best_loss >= gd_power),
        None,
    )
    print(f"GD epochs to best: {gd_epochs_to_best}; "
          f"GA epochs to match GD: {ga_epochs_to_match}")
    if ga_epochs_to_match is None:
        # GA never matched GD within its budget — an even stronger form
        # of the paper's claim.
        assert True
    else:
        assert ga_epochs_to_match >= gd_epochs_to_best * 0.8


def test_fig6_power_evaluation_cost(benchmark):
    """Time one power-platform evaluation (simulate + estimate)."""
    from repro.core.framework import MicroGrad

    from benchmarks.harness import stress_config

    mg = MicroGrad(stress_config("dynamic_power", True, "large", "gd"))
    config = dict(ADD=1, MUL=1, FADDD=2, FMULD=2, BEQ=2, BNE=1, LD=2,
                  LW=2, SD=3, SW=3, REG_DIST=10, MEM_SIZE=16,
                  MEM_STRIDE=64, MEM_TEMP1=1, MEM_TEMP2=1, B_PATTERN=0.1)
    metrics = benchmark(lambda: mg._evaluate_config(config))
    assert metrics["dynamic_power"] > 0
