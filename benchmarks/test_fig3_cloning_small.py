"""Fig 3 — workload cloning of 8 SPEC benchmarks on the Small core (GD).

The paper's Small-core results track Fig 2 with slightly higher error
(average <2%) because the smaller core is more metric-sensitive; the
worst residual is xalancbmk's IC hit rate (~10%) — the clone's 500-
instruction loop cannot reproduce a code footprint larger than the L1I.
"""

import pytest

from repro.workloads import benchmark_names

from benchmarks.harness import (
    FULL,
    clone_suite,
    mean_error,
    print_header,
    print_radar_row,
    radar_legend,
)

PAPER_EPOCHS = {
    "astar": 21, "bzip2": 5, "gcc": 36, "hmmer": 40, "libquantum": 50,
    "mcf": 30, "sjeng": 6, "xalancbmk": 37,
}

SUITE_MEAN_ERROR_CEILING = 0.08 if FULL else 0.13


@pytest.fixture(scope="module")
def cloning_results():
    return clone_suite(benchmark_names(), core="small", tuner="gd")


def test_fig3_radar_rows(cloning_results):
    print_header(
        "Fig 3: cloning on the Small core with gradient descent",
        "avg error <2% (worse than Large: higher metric sensitivity); "
        f"worst ~10% xalancbmk IC hit; epochs 5-50 ({PAPER_EPOCHS})",
    )
    radar_legend()
    errors = []
    for name, result in cloning_results.items():
        print_radar_row(name, result)
        errors.append(mean_error(result))
    suite_error = sum(errors) / len(errors)
    print(f"\nsuite mean radar error: {suite_error:.3f}")
    from benchmarks.harness import radar_payload, save_artifact

    save_artifact("fig3_cloning_small", {
        "suite_mean_error": suite_error,
        "benchmarks": radar_payload(cloning_results),
    })
    assert suite_error < SUITE_MEAN_ERROR_CEILING


def test_fig3_xalancbmk_icache_is_the_worst_residual(cloning_results):
    """The paper's signature Small-core failure mode must reproduce:
    xalancbmk's IC hit rate is the axis the clone cannot match."""
    xalan = cloning_results["xalancbmk"]
    ic_error = abs(xalan.accuracy["l1i_hit_rate"] - 1.0)
    print(f"xalancbmk IC-hit clone/target ratio: "
          f"{xalan.accuracy['l1i_hit_rate']:.3f} (paper: ~1.10)")
    assert ic_error > 0.02, "expected a visible IC-hit residual"
    assert ic_error < 0.40

    other_benchmarks_ic = [
        abs(r.accuracy["l1i_hit_rate"] - 1.0)
        for n, r in cloning_results.items()
        if n not in ("xalancbmk",)
    ]
    assert ic_error >= max(other_benchmarks_ic) - 0.02


def test_fig3_small_core_error_exceeds_large_core(cloning_results):
    """Cross-figure shape: Small-core cloning error > Large-core error
    for the memory-sensitive benchmarks (higher metric sensitivity)."""
    small_err = sum(mean_error(r) for r in cloning_results.values()) / 8
    print(f"small-core suite error {small_err:.3f} "
          "(compare Fig 2's large-core run; paper: <1% vs <2%)")
    # Asserted against the absolute ceiling only: the Fig 2 module run
    # is not shared across benchmark modules.
    assert small_err < SUITE_MEAN_ERROR_CEILING
