"""Section II-B2 / IV-B cost accounting — GD vs GA work per epoch.

The paper: "50 evaluations per epoch (population size) in GA vs 20
evaluations per epoch (2 x knobs) in GD", i.e. the GA does ~2.5x the work
per epoch, which manifests as 1.5-2.5x runtime or 35-60% extra compute.
This bench measures the accounting on the real stress scenario.
"""

import pytest

from repro.core.config import MicroGradConfig
from repro.core.framework import MicroGrad
from repro.tuning.knobs import MIX_KNOB_NAMES

from benchmarks.harness import BUDGETS, STRESS_FIXED, print_header


def _ten_knob_stress(tuner: str) -> MicroGradConfig:
    """The paper's accounting scenario: all ten mix knobs tunable."""
    fixed = {k: v for k, v in STRESS_FIXED.items()
             if k not in MIX_KNOB_NAMES}
    return MicroGradConfig(
        use_case="stress",
        metrics=("ipc",),
        core="large",
        tuner=tuner,
        knobs=MIX_KNOB_NAMES,
        fixed_knobs=fixed,
        max_epochs=min(8, BUDGETS.stress_epochs),
        loop_size=BUDGETS.stress_loop,
        instructions=BUDGETS.stress_instructions,
    )


@pytest.fixture(scope="module")
def tuner_costs():
    gd = MicroGrad(_ten_knob_stress("gd")).run()
    ga = MicroGrad(_ten_knob_stress("ga")).run()
    return gd, ga


def test_evaluations_per_epoch(tuner_costs):
    gd, ga = tuner_costs
    gd_rate = gd.tuning.requested_evaluations / gd.tuning.epochs
    ga_rate = ga.tuning.requested_evaluations / ga.tuning.epochs
    ratio = ga_rate / gd_rate
    print_header(
        "Cost accounting: evaluations per tuning epoch",
        "GA 50/epoch vs GD 20/epoch (2 x 10 mix knobs) -> ~2.5x",
    )
    print(f"GD: {gd_rate:.1f} evals/epoch "
          f"({gd.tuning.requested_evaluations} over {gd.tuning.epochs})")
    print(f"GA: {ga_rate:.1f} evals/epoch "
          f"({ga.tuning.requested_evaluations} over {ga.tuning.epochs})")
    print(f"ratio: {ratio:.2f}x (paper: 2.5x)")
    assert ga_rate == 50
    # 10 knobs -> <= 21 requested evals per epoch (1 base + 2 x knobs,
    # minus skipped knobs and clipped boundary checks).
    assert gd_rate <= 21
    assert 1.5 <= ratio <= 3.5


def test_memoization_narrows_but_does_not_erase_the_gap(tuner_costs):
    """Unique (actually simulated) evaluations: GA's converging
    population re-visits configurations, but the per-epoch gap the paper
    describes persists in requested work."""
    gd, ga = tuner_costs
    print(f"unique evals: GD {gd.tuning.unique_evaluations} "
          f"GA {ga.tuning.unique_evaluations}")
    assert gd.tuning.unique_evaluations <= gd.tuning.requested_evaluations
    assert ga.tuning.unique_evaluations <= ga.tuning.requested_evaluations


def test_gd_epoch_is_cheaper_in_wall_clock(benchmark):
    """Benchmark a single GD epoch-equivalent of platform work (21
    evaluations) — the unit the paper's 1.5-2.5x speedup multiplies."""
    mg = MicroGrad(_ten_knob_stress("gd"))
    config = dict(ADD=5, MUL=1, FADDD=1, FMULD=1, BEQ=1, BNE=1, LD=3,
                  LW=1, SD=1, SW=1, REG_DIST=10, MEM_SIZE=16,
                  MEM_STRIDE=64, MEM_TEMP1=1, MEM_TEMP2=1, B_PATTERN=0.1)

    def one_evaluation():
        return mg._evaluate_config(config)

    metrics = benchmark(one_evaluation)
    assert "ipc" in metrics
